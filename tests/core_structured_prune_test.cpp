/// Tests for structured (neuron-level) pruning, the §II-B alternative.

#include <gtest/gtest.h>

#include <cmath>

#include "pnm/core/prune.hpp"
#include "pnm/data/scaler.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/nn/metrics.hpp"

namespace pnm {
namespace {

Mlp random_net(std::uint64_t seed, std::vector<std::size_t> topo = {6, 8, 4}) {
  Rng rng(seed);
  return Mlp(topo, rng);
}

TEST(NeuronSaliency, ComputesNormProducts) {
  DenseLayer l1;
  l1.weights = Matrix(2, 2, {3.0, 4.0,    // neuron 0: norm 5
                             0.0, 1.0});  // neuron 1: norm 1
  l1.bias = {0, 0};
  l1.act = Activation::kRelu;
  DenseLayer l2;
  l2.weights = Matrix(1, 2, {2.0, 6.0});  // outgoing norms 2 and 6
  l2.bias = {0};
  l2.act = Activation::kIdentity;
  const Mlp net({l1, l2});
  const auto saliency = neuron_saliency(net, 0);
  ASSERT_EQ(saliency.size(), 2U);
  EXPECT_NEAR(saliency[0], 5.0 * 2.0, 1e-12);
  EXPECT_NEAR(saliency[1], 1.0 * 6.0, 1e-12);
}

TEST(NeuronSaliency, RejectsOutputLayer) {
  const Mlp net = random_net(1);
  EXPECT_THROW(neuron_saliency(net, 1), std::invalid_argument);
}

TEST(StructuredPrune, ShrinksTopologyAsRequested) {
  const Mlp net = random_net(2);
  const Mlp pruned = structured_prune(net, 0.5);
  EXPECT_EQ(pruned.topology(), (std::vector<std::size_t>{6, 4, 4}));
  const Mlp quarter = structured_prune(net, 0.25);
  EXPECT_EQ(quarter.topology(), (std::vector<std::size_t>{6, 6, 4}));
}

TEST(StructuredPrune, ZeroFractionIsIdentity) {
  const Mlp net = random_net(3);
  const Mlp same = structured_prune(net, 0.0);
  EXPECT_EQ(same.topology(), net.topology());
  for (std::size_t li = 0; li < net.layer_count(); ++li) {
    EXPECT_EQ(same.layer(li).weights, net.layer(li).weights);
  }
}

TEST(StructuredPrune, AlwaysKeepsAtLeastOneNeuron) {
  const Mlp net = random_net(4, {4, 3, 2});
  const Mlp pruned = structured_prune(net, 0.99);
  EXPECT_GE(pruned.topology()[1], 1U);
  EXPECT_EQ(pruned.input_size(), 4U);
  EXPECT_EQ(pruned.output_size(), 2U);
}

TEST(StructuredPrune, RejectsBadArguments) {
  const Mlp net = random_net(5);
  EXPECT_THROW(structured_prune(net, -0.1), std::invalid_argument);
  EXPECT_THROW(structured_prune(net, 1.0), std::invalid_argument);
}

TEST(StructuredPrune, DropsLowestSaliencyNeurons) {
  Mlp net = random_net(6, {3, 4, 2});
  // Make neuron 2 clearly the weakest.
  for (std::size_t c = 0; c < 3; ++c) net.layer(0).weights(2, c) = 1e-6;
  for (std::size_t r = 0; r < 2; ++r) net.layer(1).weights(r, 2) = 1e-6;
  const Mlp pruned = structured_prune(net, 0.25);
  ASSERT_EQ(pruned.topology()[1], 3U);
  // The surviving rows are the original neurons 0, 1, 3 in order.
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(pruned.layer(0).weights(0, c), net.layer(0).weights(0, c));
    EXPECT_EQ(pruned.layer(0).weights(1, c), net.layer(0).weights(1, c));
    EXPECT_EQ(pruned.layer(0).weights(2, c), net.layer(0).weights(3, c));
  }
  EXPECT_EQ(pruned.layer(0).bias[2], net.layer(0).bias[3]);
  // And the next layer lost the matching column.
  EXPECT_EQ(pruned.layer(1).weights(0, 2), net.layer(1).weights(0, 3));
}

TEST(StructuredPrune, PrunedModelStillComputes) {
  const Mlp net = random_net(7);
  const Mlp pruned = structured_prune(net, 0.5);
  const std::vector<double> x = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  EXPECT_NO_THROW((void)pruned.predict(x));
}

TEST(StructuredPrune, MultiHiddenLayerNetworks) {
  const Mlp net = random_net(8, {5, 8, 6, 3});
  const Mlp pruned = structured_prune(net, 0.5);
  EXPECT_EQ(pruned.topology(), (std::vector<std::size_t>{5, 4, 3, 3}));
  EXPECT_NO_THROW((void)pruned.predict({0.1, 0.2, 0.3, 0.4, 0.5}));
}

TEST(StructuredPrune, UnstructuredIsAtLeastComparableAtMatchedLevel) {
  // §II-B prefers unstructured pruning ("higher accuracy for similar
  // sparsity").  On printed-scale networks with fine-tuning, both recover
  // well at 50%; the literature's unstructured advantage shows up at
  // higher compression and larger models, so here we pin the weaker
  // invariant: unstructured is never materially worse.  Averaged over
  // seeds to keep the comparison out of noise.
  SynthConfig cfg;
  cfg.n_features = 8;
  cfg.n_classes = 4;
  cfg.n_samples = 900;
  cfg.class_separation = 1.4;  // non-trivial task
  double unstructured_total = 0.0;
  double structured_total = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng gen(40 + seed);
    Dataset data = make_synthetic(cfg, gen);
    Rng rng(50 + seed);
    DataSplit split = stratified_split(data, 0.7, 0.0, 0.3, rng);
    MinMaxScaler scaler;
    scale_split(split, scaler);
    Mlp net({8, 8, 4}, rng);
    TrainConfig tc;
    tc.epochs = 50;
    Trainer(tc).fit(net, split.train, rng);

    TrainConfig ft = tc;
    ft.epochs = 15;
    ft.lr = tc.lr * 0.3;

    Mlp unstructured = net;
    auto mask = magnitude_prune_global(unstructured, 0.5);
    {
      Trainer trainer(ft);
      trainer.set_projector(make_mask_projector(mask));
      Rng r(60 + seed);
      trainer.fit(unstructured, split.train, r);
    }
    Mlp structured = structured_prune(net, 0.5);
    {
      Trainer trainer(ft);
      Rng r(60 + seed);
      trainer.fit(structured, split.train, r);
    }
    unstructured_total += accuracy(unstructured, split.test);
    structured_total += accuracy(structured, split.test);
  }
  EXPECT_GE(unstructured_total / 3.0, structured_total / 3.0 - 0.03);
}

}  // namespace
}  // namespace pnm
