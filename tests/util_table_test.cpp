/// Tests for the text-table renderer used by the figure harness.

#include "pnm/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pnm {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2U);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t({"a", "b"});
  t.add_row({"xxxx", "1"});
  t.add_row({"y", "2"});
  std::istringstream in(t.to_string());
  std::string header, sep, row1, row2;
  std::getline(in, header);
  std::getline(in, sep);
  std::getline(in, row1);
  std::getline(in, row2);
  // The second column starts at the same offset in both rows.
  EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(TextTable, SeparatorLineSpansWidth) {
  TextTable t({"col"});
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  const std::string s = t.to_string();
  // Header separator plus the explicit one.
  std::size_t dashes = 0;
  for (char ch : s) dashes += (ch == '-') ? 1 : 0;
  EXPECT_GE(dashes, 6U);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(TextTable, ExtraCellsBeyondHeaderAreIgnored) {
  TextTable t({"a"});
  t.add_row({"x", "overflow"});
  const std::string s = t.to_string();
  EXPECT_EQ(s.find("overflow"), std::string::npos);
}

TEST(FormatFixed, ProducesRequestedDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.14159, 0), "3");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_fixed(2.0, 3), "2.000");
}

TEST(FormatFactor, AppendsMultiplier) {
  EXPECT_EQ(format_factor(5.0), "5.00x");
  EXPECT_EQ(format_factor(0.128), "0.13x");
}

}  // namespace
}  // namespace pnm
