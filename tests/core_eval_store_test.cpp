/// Tests for the persistent evaluation store: exact round-trips,
/// corruption/truncation recovery, version and fingerprint handling,
/// concurrent threads AND real concurrent writer processes on the
/// sharded segment layout, legacy v1-file migration, and the
/// CachedEvaluator backing integration.

#include "pnm/core/eval_store.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>
#include <vector>

#include "pnm/core/eval.hpp"
#include "pnm/util/fileio.hpp"

namespace pnm {
namespace {

/// Fresh per-test store directory under the test temp dir.
std::string store_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "pnm_" + name + ".evalstore";
  std::filesystem::remove_all(path);
  return path;
}

DesignPoint make_point(double accuracy, double area) {
  DesignPoint p;
  p.technique = "ga";
  p.config = "b4,3|s20,40|c0,4";
  p.accuracy = accuracy;
  p.area_mm2 = area;
  p.power_uw = accuracy * 3.0;
  p.delay_ms = area / 7.0;
  return p;
}

/// This writer's segment data file for direct corruption/inspection.
std::string seg_file(const std::string& dir, std::size_t id) {
  return dir + "/seg-" + std::to_string(id) + ".log";
}

TEST(EvalStore, RoundTripIsBitExact) {
  const std::string dir = store_dir("roundtrip");
  // Doubles that don't have short decimal forms must still round-trip
  // exactly — the byte-identical-front guarantee rests on this.
  const std::vector<double> values = {1.0 / 3.0,
                                      0.1,
                                      6.02214076e23,
                                      5e-324,
                                      -0.0,
                                      2.0,
                                      0.8571428571428571,
                                      std::numeric_limits<double>::infinity(),
                                      -std::numeric_limits<double>::infinity()};
  {
    EvalStore store(dir, "fpA");
    for (std::size_t i = 0; i < values.size(); ++i) {
      store.put("k" + std::to_string(i), make_point(values[i], values[i] * 2.0));
    }
    EXPECT_EQ(store.size(), values.size());
    EXPECT_EQ(store.loaded(), 0u);
  }
  EvalStore reopened(dir, "fpA");
  EXPECT_EQ(reopened.loaded(), values.size());
  EXPECT_EQ(reopened.corrupt_dropped(), 0u);
  EXPECT_EQ(reopened.duplicates(), 0u);
  EXPECT_EQ(reopened.segments_loaded(), 1u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto point = reopened.lookup("k" + std::to_string(i));
    ASSERT_TRUE(point.has_value());
    EXPECT_EQ(*point, make_point(values[i], values[i] * 2.0));
  }
  EXPECT_FALSE(reopened.lookup("missing").has_value());
}

TEST(EvalStore, ParseDoubleStrictCoversNonFiniteAndRejectsGarbage) {
  // ostream renders non-finite doubles as inf/-inf/nan; the strict
  // parser must take them back (istream >> double refuses them).
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(parse_double_strict(format_double_roundtrip(inf)), inf);
  EXPECT_EQ(parse_double_strict(format_double_roundtrip(-inf)), -inf);
  const auto nan = parse_double_strict(
      format_double_roundtrip(std::numeric_limits<double>::quiet_NaN()));
  ASSERT_TRUE(nan.has_value());
  EXPECT_TRUE(std::isnan(*nan));
  EXPECT_FALSE(parse_double_strict("").has_value());
  EXPECT_FALSE(parse_double_strict("infx").has_value());
  EXPECT_FALSE(parse_double_strict("1.5garbage").has_value());
  EXPECT_FALSE(parse_double_strict("  2.0").has_value());
}

TEST(EvalStore, TruncatedFinalLineIsDroppedAndCompacted) {
  const std::string dir = store_dir("truncated");
  {
    EvalStore store(dir, "fp");
    ASSERT_EQ(store.writer_id(), 0u);
    store.put("a", make_point(0.9, 10.0));
    store.put("b", make_point(0.8, 8.0));
  }
  // Simulate a crash mid-append: a final record missing its newline.
  {
    std::ofstream out(seg_file(dir, 0), std::ios::binary | std::ios::app);
    out << "c\tga\tcfg\t0.5\t5";
  }
  EvalStore recovered(dir, "fp");
  EXPECT_EQ(recovered.loaded(), 2u);
  EXPECT_EQ(recovered.corrupt_dropped(), 1u);
  EXPECT_TRUE(recovered.lookup("a").has_value());
  EXPECT_TRUE(recovered.lookup("b").has_value());
  EXPECT_FALSE(recovered.lookup("c").has_value());
  // Recovery compacted the owned segment: a third open sees a clean store.
  EvalStore clean(dir, "fp");
  EXPECT_EQ(clean.loaded(), 2u);
  EXPECT_EQ(clean.corrupt_dropped(), 0u);
}

TEST(EvalStore, CorruptMiddleLinesAreSkippedNotFatal) {
  const std::string dir = store_dir("corrupt");
  {
    EvalStore store(dir, "fp");
    store.put("good1", make_point(0.9, 10.0));
  }
  {
    std::ofstream out(seg_file(dir, 0), std::ios::binary | std::ios::app);
    out << "bad line without enough fields\n";
    out << "badnum\tga\tcfg\tNOTANUMBER\t1\t2\t3\n";
    out << "good2\tga\tcfg\t0.5\t5\t0\t0\n";
  }
  EvalStore store(dir, "fp");
  EXPECT_EQ(store.corrupt_dropped(), 2u);
  EXPECT_EQ(store.loaded(), 2u);
  EXPECT_TRUE(store.lookup("good1").has_value());
  ASSERT_TRUE(store.lookup("good2").has_value());
  EXPECT_EQ(store.lookup("good2")->accuracy, 0.5);
  // And the rewrite healed the segment.
  EvalStore healed(dir, "fp");
  EXPECT_EQ(healed.corrupt_dropped(), 0u);
  EXPECT_EQ(healed.loaded(), 2u);
}

TEST(EvalStore, CorruptForeignSegmentIsDroppedButNotRewritten) {
  const std::string dir = store_dir("foreign_corrupt");
  { EvalStore store(dir, "fp"); }  // creates the directory + seg-0
  // A foreign writer's segment with one good and one torn record.  No
  // live process owns it, but healing it is its owner's job: loading
  // must drop the bad line without rewriting someone else's file.
  const std::string foreign = "pnm-eval-store v2 fp\nf1\tga\tcfg\t0.5\t5\t0\t0\ntorn\tga";
  ASSERT_TRUE(write_text_file_atomic(seg_file(dir, 7), foreign));
  EvalStore store(dir, "fp", /*writer_id=*/0);
  EXPECT_EQ(store.loaded(), 1u);
  EXPECT_EQ(store.corrupt_dropped(), 1u);
  EXPECT_TRUE(store.lookup("f1").has_value());
  EXPECT_EQ(*read_text_file(seg_file(dir, 7)), foreign);  // untouched
}

TEST(EvalStore, VersionMismatchIsRejected) {
  // A legacy *file* with an unknown version.
  const std::string file = store_dir("version");
  ASSERT_TRUE(write_text_file_atomic(
      file, "pnm-eval-store v999 fp\nk\tga\tcfg\t1\t2\t3\t4\n"));
  EXPECT_THROW(EvalStore(file, "fp"), std::runtime_error);
  // The refused file is left untouched for the newer tool that wrote it.
  EXPECT_EQ(read_text_file(file)->substr(0, 20), "pnm-eval-store v999 ");

  // A segment with an unknown version inside a v2 directory.
  const std::string dir = store_dir("segversion");
  { EvalStore store(dir, "fp"); }
  ASSERT_TRUE(write_text_file_atomic(
      seg_file(dir, 3), "pnm-eval-store v999 fp\nk\tga\tcfg\t1\t2\t3\t4\n"));
  EXPECT_THROW(EvalStore(dir, "fp"), std::runtime_error);
}

TEST(EvalStore, NonStoreFileIsRejected) {
  const std::string file = store_dir("notastore");
  ASSERT_TRUE(write_text_file_atomic(file, "just some text\nmore text\n"));
  EXPECT_THROW(EvalStore(file, "fp"), std::runtime_error);
}

TEST(EvalStore, LegacyV1FileMigratesTransparently) {
  const std::string path = store_dir("migrate");
  // A PR-4 store file exactly as the old code wrote it (including a
  // duplicate key and a torn final record).
  ASSERT_TRUE(write_text_file_atomic(
      path,
      "pnm-eval-store v1 fp\n"
      "a\tga\tcfg\t0.25\t10\t1\t2\n"
      "b\tga\tcfg\t0.5\t5\t0\t0\n"
      "a\tga\tcfg\t0.9\t9\t9\t9\n"
      "c\tga\tcfg\t0.7\t7"));
  EvalStore store(path, "fp");
  EXPECT_EQ(store.loaded(), 2u);           // a + b; duplicate a dropped
  EXPECT_EQ(store.corrupt_dropped(), 1u);  // the torn c record
  EXPECT_EQ(store.lookup("a")->accuracy, 0.25);  // first record wins, as in v1
  EXPECT_TRUE(store.lookup("b").has_value());
  EXPECT_FALSE(store.lookup("c").has_value());
  // The path is now a segment directory, and new records join the old.
  EXPECT_TRUE(std::filesystem::is_directory(path));
  store.put("d", make_point(0.6, 6.0));
  EvalStore reopened(path, "fp");
  EXPECT_EQ(reopened.loaded(), 3u);
  EXPECT_TRUE(reopened.lookup("d").has_value());
}

TEST(EvalStore, LegacyV1MigrationRespectsFingerprint) {
  const std::string path = store_dir("migrate_fp");
  ASSERT_TRUE(write_text_file_atomic(path,
                                     "pnm-eval-store v1 other\n"
                                     "a\tga\tcfg\t0.25\t10\t1\t2\n"));
  EvalStore store(path, "fp");
  EXPECT_EQ(store.loaded(), 0u);
  EXPECT_EQ(store.invalidated(), 1u);
  EXPECT_FALSE(store.lookup("a").has_value());
}

TEST(EvalStore, FingerprintMismatchInvalidatesButIsolates) {
  const std::string dir = store_dir("fingerprint");
  {
    EvalStore store(dir, "configA");
    store.put("a1", make_point(0.9, 10.0));
    store.put("a2", make_point(0.8, 8.0));
  }
  // Same directory, different config: nothing may be reused.
  EvalStore other(dir, "configB");
  EXPECT_EQ(other.loaded(), 0u);
  EXPECT_EQ(other.invalidated(), 2u);
  EXPECT_FALSE(other.lookup("a1").has_value());
  other.put("b1", make_point(0.7, 7.0));
  // The segment now belongs to configB: reopening under it sees only b1.
  EvalStore reopened(dir, "configB");
  EXPECT_EQ(reopened.loaded(), 1u);
  EXPECT_TRUE(reopened.lookup("b1").has_value());
  EXPECT_FALSE(reopened.lookup("a1").has_value());
}

TEST(EvalStore, RejectsMalformedKeysAndFingerprints) {
  const std::string dir = store_dir("malformed");
  EXPECT_THROW(EvalStore(dir, ""), std::invalid_argument);
  EXPECT_THROW(EvalStore(dir, "two tokens"), std::invalid_argument);
  EvalStore store(store_dir("malformed2"), "fp");
  EXPECT_THROW(store.put("", make_point(1, 1)), std::invalid_argument);
  EXPECT_THROW(store.put("tab\tkey", make_point(1, 1)), std::invalid_argument);
  DesignPoint bad = make_point(1, 1);
  bad.technique = "has\nnewline";
  EXPECT_THROW(store.put("ok", bad), std::invalid_argument);
}

TEST(EvalStore, DuplicatePutKeepsFirstRecord) {
  const std::string dir = store_dir("duplicate");
  EvalStore store(dir, "fp");
  store.put("k", make_point(0.9, 10.0));
  store.put("k", make_point(0.1, 1.0));  // deterministic pipeline: same key
                                         // can only mean the same result
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.lookup("k")->accuracy, 0.9);
  EvalStore reopened(dir, "fp");
  EXPECT_EQ(reopened.loaded(), 1u);
  EXPECT_EQ(reopened.lookup("k")->accuracy, 0.9);
}

TEST(EvalStore, ConcurrentThreadWritersAllFlushed) {
  const std::string dir = store_dir("concurrent");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 25;
  {
    EvalStore store(dir, "fp");
    std::vector<std::thread> writers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      writers.emplace_back([&store, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          const std::string key =
              "t" + std::to_string(t) + "_" + std::to_string(i);
          store.put(key, make_point(0.5 + static_cast<double>(i) * 1e-3,
                                    static_cast<double>(t)));
        }
      });
    }
    for (std::thread& w : writers) w.join();
    EXPECT_EQ(store.size(), kThreads * kPerThread);
  }
  EvalStore reopened(dir, "fp");
  EXPECT_EQ(reopened.corrupt_dropped(), 0u);
  EXPECT_EQ(reopened.loaded(), kThreads * kPerThread);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      EXPECT_TRUE(reopened
                      .lookup("t" + std::to_string(t) + "_" + std::to_string(i))
                      .has_value());
    }
  }
}

// ---- Sharded multi-process behaviour ------------------------------------

TEST(EvalStore, WriterIdContentionProbesToNextFreeSegment) {
  const std::string dir = store_dir("contention");
  std::optional<EvalStore> first(std::in_place, dir, "fp", /*writer_id=*/0);
  // A second live writer asking for the same segment must make progress
  // on another one, not block or fail.
  std::optional<EvalStore> second(std::in_place, dir, "fp", /*writer_id=*/0);
  EXPECT_EQ(first->writer_id(), 0u);
  EXPECT_GT(second->writer_id(), 0u);
  EXPECT_NE(first->segment_path(), second->segment_path());
  first->put("from_first", make_point(0.9, 1.0));
  second->put("from_second", make_point(0.8, 2.0));
  // Each writer only sees what it loaded plus what it wrote...
  EXPECT_FALSE(first->lookup("from_second").has_value());
  // ...but a later opener merges every segment.
  first.reset();   // release seg-0
  second.reset();  // release seg-1
  EvalStore merged(dir, "fp");
  EXPECT_EQ(merged.loaded(), 2u);
  EXPECT_EQ(merged.segments_loaded(), 2u);
  EXPECT_TRUE(merged.lookup("from_first").has_value());
  EXPECT_TRUE(merged.lookup("from_second").has_value());
  EXPECT_EQ(merged.duplicates(), 0u);
}

TEST(EvalStore, CrossSegmentDuplicatesMergeLastWriteWins) {
  const std::string dir = store_dir("lastwins");
  { EvalStore store(dir, "fp"); }
  // Two segments recording the same key (two processes raced the same
  // genome): the merge must be deterministic — higher segment id wins —
  // and the duplicate must be counted and visible to the static scan.
  ASSERT_TRUE(write_text_file_atomic(
      seg_file(dir, 1), "pnm-eval-store v2 fp\nk\tga\tcfg\t0.5\t5\t0\t0\n"));
  ASSERT_TRUE(write_text_file_atomic(
      seg_file(dir, 2), "pnm-eval-store v2 fp\nk\tga\tcfg\t0.75\t5\t0\t0\n"));
  EvalStore store(dir, "fp", /*writer_id=*/0);
  EXPECT_EQ(store.loaded(), 1u);
  EXPECT_EQ(store.duplicates(), 1u);
  EXPECT_EQ(store.lookup("k")->accuracy, 0.75);
  EXPECT_EQ(EvalStore::count_duplicate_records(dir), 1u);
}

TEST(EvalStore, RealChildProcessWritersMergeCompletely) {
  const std::string dir = store_dir("multiprocess");
  { EvalStore store(dir, "fp"); }  // parent stamps the directory
  constexpr std::size_t kWriters = 3;
  constexpr std::size_t kPerWriter = 20;

  std::vector<pid_t> children;
  for (std::size_t w = 0; w < kWriters; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: its own EvalStore instance on the shared directory, its
      // own segment, real concurrent appends.
      int status = 0;
      try {
        EvalStore store(dir, "fp", /*writer_id=*/w);
        for (std::size_t i = 0; i < kPerWriter; ++i) {
          store.put("w" + std::to_string(w) + "_" + std::to_string(i),
                    make_point(0.5 + static_cast<double>(i) * 1e-3,
                               static_cast<double>(w)));
        }
      } catch (const std::exception&) {
        status = 1;
      }
      _exit(status);
    }
    children.push_back(pid);
  }
  for (pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }

  // Merged preload completeness: every child's every record, no drops,
  // no duplicates.
  EvalStore merged(dir, "fp");
  EXPECT_EQ(merged.loaded(), kWriters * kPerWriter);
  EXPECT_EQ(merged.corrupt_dropped(), 0u);
  EXPECT_EQ(merged.duplicates(), 0u);
  EXPECT_GE(merged.segments_loaded(), kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    for (std::size_t i = 0; i < kPerWriter; ++i) {
      EXPECT_TRUE(
          merged.lookup("w" + std::to_string(w) + "_" + std::to_string(i))
              .has_value());
    }
  }
  EXPECT_EQ(EvalStore::count_duplicate_records(dir), 0u);
}

TEST(EvalStore, SegmentLockHeldByChildBlocksThatSegmentOnly) {
  const std::string dir = store_dir("childlock");
  { EvalStore store(dir, "fp"); }

  // Child claims segment 0 and holds it until told to exit; the parent
  // observes real cross-process lock contention (in-process flock checks
  // would also pass trivially on some platforms).
  int to_child[2];
  int to_parent[2];
  ASSERT_EQ(pipe(to_child), 0);
  ASSERT_EQ(pipe(to_parent), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close(to_child[1]);
    close(to_parent[0]);
    int status = 0;
    try {
      EvalStore store(dir, "fp", /*writer_id=*/0);
      status = store.writer_id() == 0 ? 0 : 2;
      char byte = 'r';
      if (write(to_parent[1], &byte, 1) != 1) status = 3;
      // Hold the segment until the parent closes its end.
      if (read(to_child[0], &byte, 1) < 0) status = 4;
    } catch (const std::exception&) {
      status = 1;
    }
    _exit(status);
  }
  close(to_child[0]);
  close(to_parent[1]);
  char byte = 0;
  ASSERT_EQ(read(to_parent[0], &byte, 1), 1);  // child owns seg-0 now

  // Progress under contention: the parent still opens the store, on the
  // next segment.
  {
    EvalStore store(dir, "fp", /*writer_id=*/0);
    EXPECT_EQ(store.writer_id(), 1u);
    store.put("parent_record", make_point(0.9, 1.0));
  }

  // Stale-claim recovery: kill the child without any cleanup — the
  // kernel releases its flock, so segment 0 is immediately claimable.
  close(to_child[1]);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);
  close(to_parent[0]);
  EvalStore reclaimed(dir, "fp", /*writer_id=*/0);
  EXPECT_EQ(reclaimed.writer_id(), 0u);
  EXPECT_TRUE(reclaimed.lookup("parent_record").has_value());
}

// ---- CachedEvaluator integration ----------------------------------------

Genome tiny_genome(int bits) {
  Genome g;
  g.weight_bits = {bits};
  g.sparsity_pct = {10};
  g.clusters = {0};
  return g;
}

TEST(EvalStore, CachedEvaluatorPreloadsAndWritesThrough) {
  const std::string dir = store_dir("cached");
  std::atomic<int> calls{0};
  FunctionEvaluator inner([&calls](const Genome& g) {
    ++calls;
    GenomeFitness f;
    f.accuracy = 0.5 + 0.01 * static_cast<double>(g.weight_bits[0]);
    f.area_mm2 = 10.0 * static_cast<double>(g.weight_bits[0]);
    return f;
  });

  std::vector<DesignPoint> cold_points;
  {
    EvalStore store(dir, "fp");
    CachedEvaluator cached(inner, store);
    EXPECT_EQ(cached.loaded(), 0u);
    for (int bits : {2, 3, 4}) cold_points.push_back(cached.evaluate(tiny_genome(bits)));
    cached.evaluate(tiny_genome(2));  // in-memory hit, no extra inner call
    EXPECT_EQ(calls.load(), 3);
    EXPECT_EQ(cached.hits(), 1u);
    EXPECT_EQ(cached.misses(), 3u);
    EXPECT_EQ(store.size(), 3u);
  }
  // A new process: the store preloads the cache, the inner evaluator is
  // never called again, and results are bit-identical.
  EvalStore store(dir, "fp");
  CachedEvaluator warm(inner, store);
  EXPECT_EQ(warm.loaded(), 3u);
  const std::vector<Genome> batch = {tiny_genome(2), tiny_genome(3), tiny_genome(4)};
  const std::vector<DesignPoint> warm_points = warm.evaluate_batch(batch);
  EXPECT_EQ(calls.load(), 3);  // unchanged: zero re-evaluations
  EXPECT_EQ(warm.hits(), 3u);
  EXPECT_EQ(warm.misses(), 0u);
  ASSERT_EQ(warm_points.size(), cold_points.size());
  for (std::size_t i = 0; i < warm_points.size(); ++i) {
    EXPECT_EQ(warm_points[i], cold_points[i]);
  }
}

}  // namespace
}  // namespace pnm
