/// Tests for the persistent evaluation store: exact round-trips,
/// corruption/truncation recovery, version and fingerprint handling,
/// concurrent writers, and the CachedEvaluator backing integration.

#include "pnm/core/eval_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>
#include <vector>

#include "pnm/core/eval.hpp"
#include "pnm/util/fileio.hpp"

namespace pnm {
namespace {

/// Fresh per-test store path under the test temp dir.
std::string store_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "pnm_" + name + ".evalstore";
  std::filesystem::remove(path);
  return path;
}

DesignPoint make_point(double accuracy, double area) {
  DesignPoint p;
  p.technique = "ga";
  p.config = "b4,3|s20,40|c0,4";
  p.accuracy = accuracy;
  p.area_mm2 = area;
  p.power_uw = accuracy * 3.0;
  p.delay_ms = area / 7.0;
  return p;
}

TEST(EvalStore, RoundTripIsBitExact) {
  const std::string path = store_path("roundtrip");
  // Doubles that don't have short decimal forms must still round-trip
  // exactly — the byte-identical-front guarantee rests on this.
  const std::vector<double> values = {1.0 / 3.0,
                                      0.1,
                                      6.02214076e23,
                                      5e-324,
                                      -0.0,
                                      2.0,
                                      0.8571428571428571,
                                      std::numeric_limits<double>::infinity(),
                                      -std::numeric_limits<double>::infinity()};
  {
    EvalStore store(path, "fpA");
    for (std::size_t i = 0; i < values.size(); ++i) {
      store.put("k" + std::to_string(i), make_point(values[i], values[i] * 2.0));
    }
    EXPECT_EQ(store.size(), values.size());
    EXPECT_EQ(store.loaded(), 0u);
  }
  EvalStore reopened(path, "fpA");
  EXPECT_EQ(reopened.loaded(), values.size());
  EXPECT_EQ(reopened.corrupt_dropped(), 0u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto point = reopened.lookup("k" + std::to_string(i));
    ASSERT_TRUE(point.has_value());
    EXPECT_EQ(*point, make_point(values[i], values[i] * 2.0));
  }
  EXPECT_FALSE(reopened.lookup("missing").has_value());
}

TEST(EvalStore, ParseDoubleStrictCoversNonFiniteAndRejectsGarbage) {
  // ostream renders non-finite doubles as inf/-inf/nan; the strict
  // parser must take them back (istream >> double refuses them).
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(parse_double_strict(format_double_roundtrip(inf)), inf);
  EXPECT_EQ(parse_double_strict(format_double_roundtrip(-inf)), -inf);
  const auto nan = parse_double_strict(
      format_double_roundtrip(std::numeric_limits<double>::quiet_NaN()));
  ASSERT_TRUE(nan.has_value());
  EXPECT_TRUE(std::isnan(*nan));
  EXPECT_FALSE(parse_double_strict("").has_value());
  EXPECT_FALSE(parse_double_strict("infx").has_value());
  EXPECT_FALSE(parse_double_strict("1.5garbage").has_value());
  EXPECT_FALSE(parse_double_strict("  2.0").has_value());
}

TEST(EvalStore, TruncatedFinalLineIsDroppedAndCompacted) {
  const std::string path = store_path("truncated");
  {
    EvalStore store(path, "fp");
    store.put("a", make_point(0.9, 10.0));
    store.put("b", make_point(0.8, 8.0));
  }
  // Simulate a crash mid-append: a final record missing its newline.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "c\tga\tcfg\t0.5\t5";
  }
  EvalStore recovered(path, "fp");
  EXPECT_EQ(recovered.loaded(), 2u);
  EXPECT_EQ(recovered.corrupt_dropped(), 1u);
  EXPECT_TRUE(recovered.lookup("a").has_value());
  EXPECT_TRUE(recovered.lookup("b").has_value());
  EXPECT_FALSE(recovered.lookup("c").has_value());
  // Recovery compacted the file: a third open sees a clean store.
  EvalStore clean(path, "fp");
  EXPECT_EQ(clean.loaded(), 2u);
  EXPECT_EQ(clean.corrupt_dropped(), 0u);
}

TEST(EvalStore, CorruptMiddleLinesAreSkippedNotFatal) {
  const std::string path = store_path("corrupt");
  {
    EvalStore store(path, "fp");
    store.put("good1", make_point(0.9, 10.0));
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "bad line without enough fields\n";
    out << "badnum\tga\tcfg\tNOTANUMBER\t1\t2\t3\n";
    out << "good2\tga\tcfg\t0.5\t5\t0\t0\n";
  }
  EvalStore store(path, "fp");
  EXPECT_EQ(store.corrupt_dropped(), 2u);
  EXPECT_EQ(store.loaded(), 2u);
  EXPECT_TRUE(store.lookup("good1").has_value());
  ASSERT_TRUE(store.lookup("good2").has_value());
  EXPECT_EQ(store.lookup("good2")->accuracy, 0.5);
  // And the rewrite healed the file.
  EvalStore healed(path, "fp");
  EXPECT_EQ(healed.corrupt_dropped(), 0u);
  EXPECT_EQ(healed.loaded(), 2u);
}

TEST(EvalStore, VersionMismatchIsRejected) {
  const std::string path = store_path("version");
  ASSERT_TRUE(write_text_file_atomic(
      path, "pnm-eval-store v999 fp\nk\tga\tcfg\t1\t2\t3\t4\n"));
  EXPECT_THROW(EvalStore(path, "fp"), std::runtime_error);
  // The refused file is left untouched for the newer tool that wrote it.
  EXPECT_EQ(read_text_file(path)->substr(0, 20), "pnm-eval-store v999 ");
}

TEST(EvalStore, NonStoreFileIsRejected) {
  const std::string path = store_path("notastore");
  ASSERT_TRUE(write_text_file_atomic(path, "just some text\nmore text\n"));
  EXPECT_THROW(EvalStore(path, "fp"), std::runtime_error);
}

TEST(EvalStore, FingerprintMismatchInvalidatesButIsolates) {
  const std::string path = store_path("fingerprint");
  {
    EvalStore store(path, "configA");
    store.put("a1", make_point(0.9, 10.0));
    store.put("a2", make_point(0.8, 8.0));
  }
  // Same path, different config: nothing may be reused.
  EvalStore other(path, "configB");
  EXPECT_EQ(other.loaded(), 0u);
  EXPECT_EQ(other.invalidated(), 2u);
  EXPECT_FALSE(other.lookup("a1").has_value());
  other.put("b1", make_point(0.7, 7.0));
  // The file now belongs to configB: reopening under it sees only b1.
  EvalStore reopened(path, "configB");
  EXPECT_EQ(reopened.loaded(), 1u);
  EXPECT_TRUE(reopened.lookup("b1").has_value());
  EXPECT_FALSE(reopened.lookup("a1").has_value());
}

TEST(EvalStore, RejectsMalformedKeysAndFingerprints) {
  const std::string path = store_path("malformed");
  EXPECT_THROW(EvalStore(path, ""), std::invalid_argument);
  EXPECT_THROW(EvalStore(path, "two tokens"), std::invalid_argument);
  EvalStore store(store_path("malformed2"), "fp");
  EXPECT_THROW(store.put("", make_point(1, 1)), std::invalid_argument);
  EXPECT_THROW(store.put("tab\tkey", make_point(1, 1)), std::invalid_argument);
  DesignPoint bad = make_point(1, 1);
  bad.technique = "has\nnewline";
  EXPECT_THROW(store.put("ok", bad), std::invalid_argument);
}

TEST(EvalStore, DuplicatePutKeepsFirstRecord) {
  const std::string path = store_path("duplicate");
  EvalStore store(path, "fp");
  store.put("k", make_point(0.9, 10.0));
  store.put("k", make_point(0.1, 1.0));  // deterministic pipeline: same key
                                         // can only mean the same result
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.lookup("k")->accuracy, 0.9);
  EvalStore reopened(path, "fp");
  EXPECT_EQ(reopened.loaded(), 1u);
  EXPECT_EQ(reopened.lookup("k")->accuracy, 0.9);
}

TEST(EvalStore, ConcurrentWritersAllFlushed) {
  const std::string path = store_path("concurrent");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 25;
  {
    EvalStore store(path, "fp");
    std::vector<std::thread> writers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      writers.emplace_back([&store, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          const std::string key =
              "t" + std::to_string(t) + "_" + std::to_string(i);
          store.put(key, make_point(0.5 + static_cast<double>(i) * 1e-3,
                                    static_cast<double>(t)));
        }
      });
    }
    for (std::thread& w : writers) w.join();
    EXPECT_EQ(store.size(), kThreads * kPerThread);
  }
  EvalStore reopened(path, "fp");
  EXPECT_EQ(reopened.corrupt_dropped(), 0u);
  EXPECT_EQ(reopened.loaded(), kThreads * kPerThread);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      EXPECT_TRUE(reopened
                      .lookup("t" + std::to_string(t) + "_" + std::to_string(i))
                      .has_value());
    }
  }
}

// ---- CachedEvaluator integration ----------------------------------------

Genome tiny_genome(int bits) {
  Genome g;
  g.weight_bits = {bits};
  g.sparsity_pct = {10};
  g.clusters = {0};
  return g;
}

TEST(EvalStore, CachedEvaluatorPreloadsAndWritesThrough) {
  const std::string path = store_path("cached");
  std::atomic<int> calls{0};
  FunctionEvaluator inner([&calls](const Genome& g) {
    ++calls;
    GenomeFitness f;
    f.accuracy = 0.5 + 0.01 * static_cast<double>(g.weight_bits[0]);
    f.area_mm2 = 10.0 * static_cast<double>(g.weight_bits[0]);
    return f;
  });

  std::vector<DesignPoint> cold_points;
  {
    EvalStore store(path, "fp");
    CachedEvaluator cached(inner, store);
    EXPECT_EQ(cached.loaded(), 0u);
    for (int bits : {2, 3, 4}) cold_points.push_back(cached.evaluate(tiny_genome(bits)));
    cached.evaluate(tiny_genome(2));  // in-memory hit, no extra inner call
    EXPECT_EQ(calls.load(), 3);
    EXPECT_EQ(cached.hits(), 1u);
    EXPECT_EQ(cached.misses(), 3u);
    EXPECT_EQ(store.size(), 3u);
  }
  // A new process: the store preloads the cache, the inner evaluator is
  // never called again, and results are bit-identical.
  EvalStore store(path, "fp");
  CachedEvaluator warm(inner, store);
  EXPECT_EQ(warm.loaded(), 3u);
  const std::vector<Genome> batch = {tiny_genome(2), tiny_genome(3), tiny_genome(4)};
  const std::vector<DesignPoint> warm_points = warm.evaluate_batch(batch);
  EXPECT_EQ(calls.load(), 3);  // unchanged: zero re-evaluations
  EXPECT_EQ(warm.hits(), 3u);
  EXPECT_EQ(warm.misses(), 0u);
  ASSERT_EQ(warm_points.size(), cold_points.size());
  for (std::size_t i = 0; i < warm_points.size(); ++i) {
    EXPECT_EQ(warm_points[i], cold_points[i]);
  }
}

}  // namespace
}  // namespace pnm
