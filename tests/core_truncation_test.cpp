/// Tests for precision-scaled accumulation (the approximate-computing
/// extension): integer semantics, hardware equivalence, and the area
/// pay-off it exists for.

#include <gtest/gtest.h>

#include <cmath>

#include "pnm/pnm.hpp"

namespace pnm {
namespace {

QuantizedMlp quantized(const Mlp& net, int bits, int input_bits,
                       const std::vector<int>& shifts) {
  QuantSpec spec = QuantSpec::uniform(net.layer_count(), bits, input_bits);
  spec.acc_shift = shifts;
  return QuantizedMlp::from_float(net, spec);
}

TEST(Truncation, SpecValidation) {
  QuantSpec spec = QuantSpec::uniform(2, 4);
  spec.acc_shift = {1};  // wrong arity
  EXPECT_THROW(spec.validate(2), std::invalid_argument);
  spec.acc_shift = {1, 13};  // out of range
  EXPECT_THROW(spec.validate(2), std::invalid_argument);
  spec.acc_shift = {0, 12};
  EXPECT_NO_THROW(spec.validate(2));
  spec.acc_shift.clear();  // empty = exact, always fine
  EXPECT_NO_THROW(spec.validate(2));
}

TEST(Truncation, KnownValueSemantics) {
  // One layer, one neuron: w = {3, -3}, bias 5, shift 1.
  DenseLayer l;
  l.weights = Matrix(2, 2, {3.0, -3.0, 1.0, 1.0});
  l.bias = {0.0, 0.0};
  l.act = Activation::kIdentity;
  Mlp net({l});
  // bits=3 -> scale 1, codes = values.
  const auto q = quantized(net, 3, 3, {1});
  // x = (3, 1): terms for neuron 0: (3*3)>>1 = 4, -( (3*1)>>1 ) = -1.
  const auto out = q.forward({3, 1});
  EXPECT_EQ(out[0], 4 - 1);
  // Exact version differs: (9 - 3) = 6 vs truncated 3 -> truncation real.
  const auto q_exact = quantized(net, 3, 3, {0});
  EXPECT_EQ(q_exact.forward({3, 1})[0], 6);
}

TEST(Truncation, ZeroShiftIsExactlyTheBaseModel) {
  Rng rng(1);
  Mlp net({5, 4, 3}, rng);
  const auto q0 = quantized(net, 5, 4, {0, 0});
  const auto q_empty = quantized(net, 5, 4, {});
  Rng vec(2);
  for (int t = 0; t < 50; ++t) {
    std::vector<std::int64_t> xq(5);
    for (auto& v : xq) v = static_cast<std::int64_t>(vec.uniform_int(std::uint64_t{16}));
    EXPECT_EQ(q0.forward(xq), q_empty.forward(xq));
  }
}

TEST(Truncation, RangesStaySoundUnderShift) {
  Rng rng(3);
  Mlp net({4, 4, 3}, rng);
  const auto q = quantized(net, 6, 4, {2, 3});
  const auto ranges = q.neuron_preact_ranges();
  Rng vec(4);
  for (int t = 0; t < 300; ++t) {
    std::vector<std::int64_t> xq(4);
    for (auto& v : xq) v = static_cast<std::int64_t>(vec.uniform_int(std::uint64_t{16}));
    // Recompute layer-0 accumulators with the truncated semantics.
    const auto& l = q.layer(0);
    for (std::size_t r = 0; r < l.out_features(); ++r) {
      std::int64_t acc = l.bias[r] >> l.acc_shift;
      for (std::size_t c = 0; c < l.in_features(); ++c) {
        const int w = l.weight(r, c);
        if (w == 0) continue;
        const std::int64_t mag =
            (std::llabs(static_cast<long long>(w)) * xq[c]) >> l.acc_shift;
        acc += w > 0 ? mag : -mag;
      }
      EXPECT_GE(acc, ranges[0][r].lo);
      EXPECT_LE(acc, ranges[0][r].hi);
    }
  }
}

/// Hardware equivalence with truncation active, across shifts.
class TruncationEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TruncationEquivalence, CircuitMatchesGoldenModel) {
  const int shift = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(100 + seed);
    Mlp net({6, 5, 4}, rng);
    const auto q = quantized(net, 6, 4, {shift, shift});
    const hw::BespokeCircuit circuit(q);
    Rng vec(seed);
    for (int t = 0; t < 30; ++t) {
      std::vector<std::int64_t> xq(6);
      for (auto& v : xq) v = static_cast<std::int64_t>(vec.uniform_int(std::uint64_t{16}));
      ASSERT_EQ(circuit.predict(xq), q.predict_quantized(xq))
          << "shift=" << shift << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, TruncationEquivalence, ::testing::Values(0, 1, 2, 3, 5));

TEST(Truncation, ShiftShrinksAccumulateStage) {
  Rng rng(5);
  Mlp net({8, 6, 4}, rng);
  const auto& tech = hw::TechLibrary::egt();
  const auto exact = quantized(net, 8, 4, {0, 0});
  const auto trunc = quantized(net, 8, 4, {3, 3});
  const hw::BespokeCircuit c_exact(exact);
  const hw::BespokeCircuit c_trunc(trunc);
  const auto sa_exact = c_exact.stage_areas(tech);
  const auto sa_trunc = c_trunc.stage_areas(tech);
  EXPECT_LT(sa_trunc.accumulate_mm2, 0.75 * sa_exact.accumulate_mm2);
  EXPECT_LT(c_trunc.area_mm2(tech), c_exact.area_mm2(tech));
}

TEST(Truncation, SmallShiftsBarelyHurtAccuracy) {
  FlowConfig config;
  config.dataset_name = "seeds";
  config.train.epochs = 25;
  config.finetune_epochs = 3;
  MinimizationFlow flow(config);
  flow.prepare();
  const auto points = flow.sweep_truncation({1, 2, 3});
  for (const auto& p : points) {
    EXPECT_EQ(p.technique, "truncate");
    EXPECT_LT(p.area_mm2, flow.baseline().area_mm2) << p.config;
  }
  // t=1..2 keep within a few points of the baseline on an easy task.
  EXPECT_GT(points[0].accuracy, flow.baseline().accuracy - 0.05);
  EXPECT_GT(points[1].accuracy, flow.baseline().accuracy - 0.08);
}

TEST(Truncation, GenomeKeyIncludesShiftGenes) {
  Genome g;
  g.weight_bits = {4, 4};
  g.sparsity_pct = {0, 0};
  g.clusters = {0, 0};
  EXPECT_EQ(g.key(), "b4,4|s0,0|c0,0");
  g.acc_shift = {1, 2};
  EXPECT_EQ(g.key(), "b4,4|s0,0|c0,0|t1,2");
}

TEST(Truncation, GaExploresShiftGeneWhenEnabled) {
  GaConfig ga;
  ga.population = 12;
  ga.generations = 4;
  ga.acc_shift_choices = {0, 2, 4};
  // Toy fitness: area falls with total shift, accuracy mildly too.
  const GenomeEvaluator eval = [](const Genome& g) {
    double shift_sum = 0.0;
    for (int s : g.acc_shift) shift_sum += s;
    return GenomeFitness{1.0 - 0.01 * shift_sum, 100.0 - 10.0 * shift_sum};
  };
  Rng rng(6);
  const auto result = nsga2_search(ga, 2, eval, rng);
  ASSERT_FALSE(result.front.empty());
  bool saw_shifted = false;
  for (const auto& m : result.front) {
    ASSERT_EQ(m.genome.acc_shift.size(), 2U);
    for (int s : m.genome.acc_shift) saw_shifted |= (s > 0);
  }
  EXPECT_TRUE(saw_shifted);  // the cheap corner must be on the front
}

}  // namespace
}  // namespace pnm
