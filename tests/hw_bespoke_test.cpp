/// Tests for the bespoke circuit generator.  The flagship property: the
/// gate-level simulation of the generated netlist is bit-exact with the
/// integer golden model across random networks, topologies and precisions.

#include "pnm/hw/bespoke.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "pnm/core/prune.hpp"
#include "pnm/core/cluster.hpp"
#include "pnm/hw/report.hpp"
#include "pnm/util/bits.hpp"

namespace pnm::hw {
namespace {

QuantizedMlp random_qmlp(const std::vector<std::size_t>& topology, int bits,
                         int input_bits, std::uint64_t seed) {
  pnm::Rng rng(seed);
  pnm::Mlp net(topology, rng);
  return QuantizedMlp::from_float(net, pnm::QuantSpec::uniform(net.layer_count(), bits,
                                                               input_bits));
}

std::vector<std::int64_t> random_input(std::size_t n, int input_bits, pnm::Rng& rng) {
  std::vector<std::int64_t> xq(n);
  for (auto& v : xq) {
    v = static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::uint64_t>(pnm::unsigned_max(input_bits)) + 1));
  }
  return xq;
}

TEST(Bespoke, RejectsUnsupportedShapes) {
  pnm::Rng rng(1);
  pnm::Mlp sigmoid_net({3, 3, 2}, rng, pnm::Activation::kTanh);
  EXPECT_THROW(QuantizedMlp::from_float(sigmoid_net, pnm::QuantSpec::uniform(2, 4)),
               std::invalid_argument);
}

TEST(Bespoke, PredictValidatesInput) {
  const auto q = random_qmlp({4, 3, 2}, 4, 4, 2);
  const BespokeCircuit circuit(q);
  EXPECT_THROW((void)circuit.predict({1, 2, 3}), std::invalid_argument);      // arity
  EXPECT_THROW((void)circuit.predict({1, 2, 3, 16}), std::invalid_argument);  // range
  EXPECT_THROW((void)circuit.predict({1, 2, 3, -1}), std::invalid_argument);
  EXPECT_NO_THROW((void)circuit.predict({0, 15, 7, 3}));
}

/// THE equivalence property, across topology/bits/input-bits combinations.
class EquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<std::vector<std::size_t>, int, int>> {};

TEST_P(EquivalenceSweep, GateLevelMatchesGoldenModel) {
  const auto& [topology, bits, input_bits] = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto q = random_qmlp(topology, bits, input_bits, 1000 + seed);
    const BespokeCircuit circuit(q);
    pnm::Rng rng(seed);
    for (int trial = 0; trial < 40; ++trial) {
      const auto xq = random_input(topology.front(), input_bits, rng);
      ASSERT_EQ(circuit.predict(xq), q.predict_quantized(xq))
          << "seed=" << seed << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndPrecisions, EquivalenceSweep,
    ::testing::Values(
        std::make_tuple(std::vector<std::size_t>{2, 2, 2}, 3, 2),
        std::make_tuple(std::vector<std::size_t>{4, 3, 3}, 2, 4),
        std::make_tuple(std::vector<std::size_t>{5, 4, 3}, 4, 4),
        std::make_tuple(std::vector<std::size_t>{7, 4, 3}, 6, 4),
        std::make_tuple(std::vector<std::size_t>{6, 5, 4}, 8, 6),
        std::make_tuple(std::vector<std::size_t>{4, 4, 4, 3}, 4, 4),   // two hidden
        std::make_tuple(std::vector<std::size_t>{11, 8, 7}, 5, 4),    // whitewine shape
        std::make_tuple(std::vector<std::size_t>{16, 10, 10}, 3, 4)));  // pendigits shape

TEST(Bespoke, EquivalenceHoldsWithoutSharing) {
  const auto q = random_qmlp({5, 4, 3}, 4, 4, 5);
  BespokeOptions options;
  options.share_products = false;
  const BespokeCircuit circuit(q, options);
  pnm::Rng rng(6);
  for (int trial = 0; trial < 40; ++trial) {
    const auto xq = random_input(5, 4, rng);
    ASSERT_EQ(circuit.predict(xq), q.predict_quantized(xq));
  }
}

/// Property-style bit-exactness of the shared-DAG product stage: random
/// models across topologies/precisions/seeds, simulated against the
/// integer golden model with share_subexpressions on.
TEST(Bespoke, EquivalenceHoldsWithSubexpressionSharing) {
  BespokeOptions options;
  options.share_subexpressions = true;
  const std::vector<std::tuple<std::vector<std::size_t>, int, int>> configs = {
      {{4, 3, 3}, 4, 4}, {{5, 4, 3}, 6, 4}, {{7, 4, 3}, 8, 4},
      {{4, 4, 4, 3}, 5, 4}, {{11, 8, 7}, 7, 4}};
  for (const auto& [topology, bits, input_bits] : configs) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const auto q = random_qmlp(topology, bits, input_bits, 4000 + seed);
      const BespokeCircuit circuit(q, options);
      pnm::Rng rng(seed);
      for (int trial = 0; trial < 40; ++trial) {
        const auto xq = random_input(topology.front(), input_bits, rng);
        ASSERT_EQ(circuit.predict(xq), q.predict_quantized(xq))
            << "bits=" << bits << " seed=" << seed << " trial=" << trial;
      }
    }
  }
}

TEST(Bespoke, ExhaustiveEquivalenceWithSubexpressionSharing) {
  // All 512 input vectors of a 3-feature 3-bit classifier, CSD and binary.
  for (const bool csd : {true, false}) {
    const auto q = random_qmlp({3, 4, 3}, 6, 3, 777);
    BespokeOptions options;
    options.use_csd = csd;
    options.share_subexpressions = true;
    const BespokeCircuit circuit(q, options);
    for (std::int64_t a = 0; a < 8; ++a) {
      for (std::int64_t b = 0; b < 8; ++b) {
        for (std::int64_t c = 0; c < 8; ++c) {
          ASSERT_EQ(circuit.predict({a, b, c}), q.predict_quantized({a, b, c}))
              << "csd=" << csd << " x=(" << a << "," << b << "," << c << ")";
        }
      }
    }
  }
}

TEST(Bespoke, SubexpressionSharingNeverCostsMoreAddersOrArea) {
  const auto& tech = TechLibrary::egt();
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    const auto q = random_qmlp({8, 6, 5}, 7, 4, seed);
    BespokeOptions shared;
    shared.share_subexpressions = true;
    const BespokeCircuit with(q, shared);
    const BespokeCircuit without(q, BespokeOptions{});
    EXPECT_LE(with.product_adder_count(), without.product_adder_count())
        << "seed=" << seed;
    EXPECT_LE(with.area_mm2(tech), without.area_mm2(tech) * 1.0001) << "seed=" << seed;
    // The multiplier-instance metric is sharing-independent.
    EXPECT_EQ(with.multiplier_count(), without.multiplier_count());
  }
}

TEST(Bespoke, SubexpressionSharingShrinksWideColumns) {
  // 8-bit dense columns have heavy subterm overlap: the shared DAG must
  // strictly reduce both planned adders and exact area.
  const auto& tech = TechLibrary::egt();
  const auto q = random_qmlp({6, 10, 5}, 8, 4, 41);
  BespokeOptions shared;
  shared.share_subexpressions = true;
  const BespokeCircuit with(q, shared);
  const BespokeCircuit without(q, BespokeOptions{});
  EXPECT_LT(with.product_adder_count(), without.product_adder_count());
  EXPECT_LT(with.area_mm2(tech), without.area_mm2(tech));
}

TEST(Bespoke, SubexpressionSharingRequiresSharedProducts) {
  // share_subexpressions without share_products is ignored: identical to
  // the per-connection datapath.
  const auto q = random_qmlp({5, 4, 3}, 5, 4, 55);
  BespokeOptions both_off;
  both_off.share_products = false;
  BespokeOptions mcm_only = both_off;
  mcm_only.share_subexpressions = true;
  const BespokeCircuit a(q, both_off);
  const BespokeCircuit b(q, mcm_only);
  EXPECT_EQ(a.netlist().gate_count(), b.netlist().gate_count());
  EXPECT_EQ(a.product_adder_count(), b.product_adder_count());
}

TEST(Bespoke, EquivalenceHoldsWithBinaryRecoding) {
  const auto q = random_qmlp({5, 4, 3}, 5, 4, 7);
  BespokeOptions options;
  options.use_csd = false;
  const BespokeCircuit circuit(q, options);
  pnm::Rng rng(8);
  for (int trial = 0; trial < 40; ++trial) {
    const auto xq = random_input(5, 4, rng);
    ASSERT_EQ(circuit.predict(xq), q.predict_quantized(xq));
  }
}

TEST(Bespoke, FullyExhaustiveEquivalenceThreeInputs) {
  // Every one of the 512 possible input vectors of a 3-feature, 3-bit
  // classifier, across option combinations — the strongest equivalence
  // statement we can make at test-budget cost.
  for (const bool share : {true, false}) {
    for (const bool csd : {true, false}) {
      const auto q = random_qmlp({3, 4, 3}, 5, 3, 321);
      BespokeOptions options;
      options.share_products = share;
      options.use_csd = csd;
      const BespokeCircuit circuit(q, options);
      for (std::int64_t a = 0; a < 8; ++a) {
        for (std::int64_t b = 0; b < 8; ++b) {
          for (std::int64_t c = 0; c < 8; ++c) {
            ASSERT_EQ(circuit.predict({a, b, c}), q.predict_quantized({a, b, c}))
                << "share=" << share << " csd=" << csd << " x=(" << a << "," << b
                << "," << c << ")";
          }
        }
      }
    }
  }
}

TEST(Bespoke, ExhaustiveEquivalenceOnTinyNetwork) {
  // 2 inputs x 2 bits: all 16 input vectors, several seeds.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto q = random_qmlp({2, 3, 3}, 4, 2, 50 + seed);
    const BespokeCircuit circuit(q);
    for (std::int64_t a = 0; a < 4; ++a) {
      for (std::int64_t b = 0; b < 4; ++b) {
        ASSERT_EQ(circuit.predict({a, b}), q.predict_quantized({a, b}))
            << "seed=" << seed << " x=(" << a << "," << b << ")";
      }
    }
  }
}

TEST(Bespoke, FewerBitsGiveSmallerArea) {
  const auto& tech = TechLibrary::egt();
  double prev_area = 1e18;
  for (int bits : {8, 6, 4, 2}) {
    const auto q = random_qmlp({8, 6, 4}, bits, 4, 77);
    const BespokeCircuit circuit(q);
    const double area = circuit.area_mm2(tech);
    EXPECT_LT(area, prev_area) << "bits=" << bits;
    prev_area = area;
  }
}

TEST(Bespoke, PruningRemovesHardware) {
  const auto& tech = TechLibrary::egt();
  pnm::Rng rng(9);
  pnm::Mlp net({8, 6, 4}, rng);
  const auto spec = pnm::QuantSpec::uniform(2, 6, 4);

  const BespokeCircuit dense(QuantizedMlp::from_float(net, spec));
  pnm::Mlp pruned_net = net;
  pnm::magnitude_prune_global(pruned_net, 0.5);
  const BespokeCircuit pruned(QuantizedMlp::from_float(pruned_net, spec));

  EXPECT_LT(pruned.area_mm2(tech), 0.8 * dense.area_mm2(tech));
  EXPECT_LT(pruned.multiplier_count(), dense.multiplier_count());
}

TEST(Bespoke, ClusteringReducesMultiplierCount) {
  pnm::Rng rng(10);
  pnm::Mlp net({8, 8, 5}, rng);
  const auto spec = pnm::QuantSpec::uniform(2, 7, 4);

  const BespokeCircuit plain(QuantizedMlp::from_float(net, spec));
  pnm::Mlp clustered_net = net;
  pnm::Rng crng(11);
  pnm::cluster_weights(clustered_net, {2, 2}, crng);
  const BespokeCircuit clustered(QuantizedMlp::from_float(clustered_net, spec));

  EXPECT_LT(clustered.multiplier_count(), plain.multiplier_count());
  const auto& tech = TechLibrary::egt();
  EXPECT_LT(clustered.area_mm2(tech), plain.area_mm2(tech));
}

TEST(Bespoke, SharingShrinksClusteredCircuits) {
  // The ablation-A2 mechanism: with clustering, shared products matter.
  pnm::Rng rng(12);
  pnm::Mlp net({8, 8, 5}, rng);
  pnm::Rng crng(13);
  pnm::cluster_weights(net, {2, 2}, crng);
  const auto q = QuantizedMlp::from_float(net, pnm::QuantSpec::uniform(2, 7, 4));

  const auto& tech = TechLibrary::egt();
  BespokeOptions shared;
  BespokeOptions unshared;
  unshared.share_products = false;
  const BespokeCircuit with(q, shared);
  const BespokeCircuit without(q, unshared);
  EXPECT_LT(with.area_mm2(tech), 0.8 * without.area_mm2(tech));
}

TEST(Bespoke, StageAreasSumToTotal) {
  const auto q = random_qmlp({6, 5, 4}, 5, 4, 14);
  const BespokeCircuit circuit(q);
  const auto& tech = TechLibrary::egt();
  const auto stages = circuit.stage_areas(tech);
  EXPECT_NEAR(stages.total(), circuit.area_mm2(tech), 1e-9);
  EXPECT_GT(stages.product_mm2, 0.0);
  EXPECT_GT(stages.accumulate_mm2, 0.0);
  EXPECT_GT(stages.activation_mm2, 0.0);
  EXPECT_GT(stages.argmax_mm2, 0.0);
}

TEST(Bespoke, MultiplierCountMatchesGoldenModelMetric) {
  const auto q = random_qmlp({7, 6, 5}, 6, 4, 15);
  const BespokeCircuit circuit(q);
  std::size_t expected = 0;
  for (std::size_t c : q.shared_multiplier_counts()) expected += c;
  EXPECT_EQ(circuit.multiplier_count(), expected);
}

TEST(Bespoke, DelayAndPowerArePositiveAndPlausible) {
  const auto q = random_qmlp({8, 6, 4}, 6, 4, 16);
  const BespokeCircuit circuit(q);
  const auto& tech = TechLibrary::egt();
  const auto report = analyze(circuit.netlist(), tech);
  EXPECT_GT(report.area_mm2, 1.0);        // printed MLPs are huge
  EXPECT_LT(report.area_mm2, 1e5);
  EXPECT_GT(report.power_uw, 100.0);
  EXPECT_GT(report.critical_path_ms, 1.0);  // Hz-scale clocks
  EXPECT_GT(report.max_frequency_hz, 0.1);
  EXPECT_LT(report.max_frequency_hz, 1000.0);
}

TEST(Bespoke, ClassBitsWidthCoversAllClasses) {
  const auto q10 = random_qmlp({6, 5, 10}, 4, 4, 17);
  const BespokeCircuit c10(q10);
  EXPECT_EQ(c10.n_classes(), 10U);
  EXPECT_EQ(c10.netlist().outputs().size(), 4U);  // ceil(log2 10)
  const auto q3 = random_qmlp({6, 5, 3}, 4, 4, 18);
  const BespokeCircuit c3(q3);
  EXPECT_EQ(c3.netlist().outputs().size(), 2U);
}

}  // namespace
}  // namespace pnm::hw
