/// Cross-engine bit-exactness tests for the multi-sample (sample-blocked)
/// SIMD inference engine: for every compiled kernel (scalar fallback plus
/// the native AVX2/NEON one when the machine has it), blocked forward
/// values, blocked predictions, and batched accuracy must equal the PR-3
/// single-sample engine value-for-value — across random models, all four
/// UCI datasets, truncation shifts, edge layer widths, sample counts that
/// are not a multiple of the block, and > 2^32 activations (which stress
/// the 32-bit-halves multiply in the vector kernels).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pnm/core/infer_simd.hpp"
#include "pnm/core/qmlp.hpp"
#include "pnm/core/quantize.hpp"
#include "pnm/data/scaler.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/nn/mlp.hpp"
#include "pnm/util/rng.hpp"

namespace pnm {
namespace {

constexpr std::size_t kB = simd::kSampleBlock;

/// Every ISA with a kernel on this machine (scalar always; at most one
/// native vector ISA on top).
std::vector<simd::Isa> available_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  for (const simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (simd::isa_available(isa)) isas.push_back(isa);
  }
  return isas;
}

Mlp random_model(const std::vector<std::size_t>& topology, std::uint64_t seed,
                 double bias_span) {
  Rng rng(seed);
  Mlp model(topology, rng);
  for (std::size_t li = 0; li < model.layer_count(); ++li) {
    for (auto& b : model.layer(li).bias) b = rng.normal(0.0, bias_span);
  }
  return model;
}

/// Blocked forward/predict/accuracy through every available kernel ==
/// single-sample engine, value for value.
void expect_engines_agree(const QuantizedMlp& engine, const QuantizedDataset& qdata) {
  ASSERT_TRUE(qdata.has_blocked());
  const std::size_t classes = engine.output_size();
  InferScratch ss;
  BlockScratch bs;
  std::size_t preds[kB];

  for (const simd::Isa isa : available_isas()) {
    for (std::size_t b = 0; b < qdata.block_count(); ++b) {
      const std::size_t lanes = std::min(kB, qdata.size() - b * kB);
      const auto out = engine.forward_block_into(qdata.block(b), bs, isa);
      ASSERT_EQ(out.size(), classes * kB);
      for (std::size_t j = 0; j < lanes; ++j) {
        const std::size_t i = b * kB + j;
        const auto ref = engine.forward_into(qdata.sample(i), ss);
        for (std::size_t r = 0; r < classes; ++r) {
          ASSERT_EQ(out[r * kB + j], ref[r])
              << simd::isa_name(isa) << " sample " << i << " class " << r;
        }
      }
      engine.predict_block_into(qdata.block(b), lanes, bs, preds, isa);
      for (std::size_t j = 0; j < lanes; ++j) {
        const std::size_t i = b * kB + j;
        ASSERT_EQ(preds[j], engine.predict_quantized_into(qdata.sample(i), ss))
            << simd::isa_name(isa) << " sample " << i;
      }
    }
  }

  // Batched accuracy: the single-sample loop (forced by dropping the
  // blocked layout) and every blocked engine agree exactly.
  QuantizedDataset unblocked = qdata;
  unblocked.xb.clear();
  ASSERT_FALSE(unblocked.has_blocked());
  const double acc_single = engine.accuracy(unblocked);
  EXPECT_EQ(engine.accuracy(qdata), acc_single);
  for (const simd::Isa isa : available_isas()) {
    EXPECT_EQ(engine.accuracy_blocked(qdata, isa), acc_single) << simd::isa_name(isa);
  }
}

Dataset scaled_named_dataset(const char* name, std::uint64_t seed) {
  Dataset data = make_named_dataset(name, seed);
  MinMaxScaler scaler;
  scaler.fit(data);
  return scaler.transform(data);
}

TEST(InferSimd, RandomModelsOnAllFourDatasetsMatchSingleSample) {
  std::uint64_t seed = 7100;
  for (const char* name : {"whitewine", "redwine", "pendigits", "seeds"}) {
    const Dataset data = scaled_named_dataset(name, 13);
    for (int bits : {2, 5, 8}) {
      const Mlp model = random_model({data.n_features(), 6, data.n_classes},
                                     ++seed, /*bias_span=*/0.5);
      const QuantizedMlp engine =
          QuantizedMlp::from_float(model, QuantSpec::uniform(2, bits, 4));
      expect_engines_agree(engine, quantize_dataset(data, 4));
    }
  }
}

TEST(InferSimd, TruncationShiftsMatchSingleSample) {
  const Dataset data = scaled_named_dataset("seeds", 29);
  std::uint64_t seed = 7200;
  for (int shift : {1, 3, 7, 12}) {
    // Wide bias span forces negative bias codes (floor-shift edge) and
    // both weight signs through the truncating vector path.
    const Mlp model = random_model({data.n_features(), 5, data.n_classes},
                                   ++seed, /*bias_span=*/2.0);
    QuantSpec spec = QuantSpec::uniform(2, 6, 4);
    spec.acc_shift = {shift, shift};
    expect_engines_agree(QuantizedMlp::from_float(model, spec),
                         quantize_dataset(data, 4));
  }
}

TEST(InferSimd, EdgeWidthsAndPartialTailBlocksMatchSingleSample) {
  const Dataset full = scaled_named_dataset("seeds", 31);
  std::uint64_t seed = 7300;
  // Layer widths around the block geometry (1-wide hidden, wider-than-
  // block hidden, 3 layers) x sample counts around the block boundary
  // (1, kB - 1, kB, kB + 1, 3 * kB + 5).
  const std::vector<std::vector<std::size_t>> topologies = {
      {full.n_features(), 1, full.n_classes},
      {full.n_features(), 9, full.n_classes},
      {full.n_features(), 5, 4, full.n_classes},
  };
  for (const auto& topology : topologies) {
    const Mlp model = random_model(topology, ++seed, 0.5);
    const QuantizedMlp engine =
        QuantizedMlp::from_float(model, QuantSpec::uniform(topology.size() - 1, 5, 4));
    for (const std::size_t n : {std::size_t{1}, kB - 1, kB, kB + 1, 3 * kB + 5}) {
      Dataset subset = full;
      subset.x.assign(full.x.begin(), full.x.begin() + static_cast<std::ptrdiff_t>(n));
      subset.y.assign(full.y.begin(), full.y.begin() + static_cast<std::ptrdiff_t>(n));
      expect_engines_agree(engine, quantize_dataset(subset, 4));
    }
  }
}

TEST(InferSimd, LargeActivationsStressTheWideMultiply) {
  // Identity hidden layer with huge bias codes: layer-2 inputs exceed
  // 2^32 in both signs, so the vector kernels' 32-bit-halves multiply
  // exercises its cross terms (plain layer-0 activations never do).
  QuantizedLayer l1;
  l1.set_dense(2, 2, {3, -2, -3, 1});
  l1.bias = {std::int64_t{3} << 33, -(std::int64_t{5} << 33)};
  l1.weight_bits = 4;
  l1.act = Activation::kIdentity;
  l1.weight_scale = 0.1;
  QuantizedLayer l2;
  l2.set_dense(2, 2, {5, -7, -6, 4});
  l2.bias = {11, -13};
  l2.weight_bits = 4;
  l2.act = Activation::kIdentity;
  l2.weight_scale = 0.1;

  for (int shift : {0, 2, 9}) {
    auto layers = std::vector<QuantizedLayer>{l1, l2};
    layers[0].acc_shift = shift;
    layers[1].acc_shift = shift;
    const QuantizedMlp engine = QuantizedMlp::from_layers(std::move(layers), 4);

    QuantizedDataset qdata;
    qdata.name = "wide-mul";
    qdata.input_bits = 4;
    qdata.n_features = 2;
    qdata.n_classes = 2;
    for (std::int64_t a = 0; a <= 15; ++a) {
      for (std::int64_t b = 0; b <= 15; ++b) {
        qdata.x.push_back(a);
        qdata.x.push_back(b);
        qdata.y.push_back(static_cast<std::size_t>((a + b) % 2));
      }
    }
    qdata.build_blocked();
    expect_engines_agree(engine, qdata);
  }
}

TEST(InferSimd, FullyPrunedRowsMatchSingleSample) {
  // A row with no CSR entries (all-zero weights) and an all-clamping ReLU
  // row, through every kernel.
  QuantizedLayer l1;
  l1.set_dense(3, 2, {0, 0, -3, -1, 2, -2});
  l1.bias = {0, -1, 2};
  l1.weight_bits = 3;
  l1.act = Activation::kRelu;
  l1.weight_scale = 0.5;
  QuantizedLayer l2;
  l2.set_dense(2, 3, {1, -2, 3, 0, 0, 0});
  l2.bias = {-1, 0};
  l2.weight_bits = 3;
  l2.act = Activation::kIdentity;
  l2.weight_scale = 0.5;
  const QuantizedMlp engine =
      QuantizedMlp::from_layers({std::move(l1), std::move(l2)}, 3);

  QuantizedDataset qdata;
  qdata.name = "pruned";
  qdata.input_bits = 3;
  qdata.n_features = 2;
  qdata.n_classes = 2;
  for (std::int64_t a = 0; a <= 7; ++a) {
    for (std::int64_t b = 0; b <= 7; ++b) {
      qdata.x.push_back(a);
      qdata.x.push_back(b);
      qdata.y.push_back(static_cast<std::size_t>(a % 2));
    }
  }
  qdata.build_blocked();
  expect_engines_agree(engine, qdata);
}

TEST(InferSimd, BlockedLayoutRoundTripsAndTailIsZero) {
  const Dataset data = scaled_named_dataset("redwine", 17);
  Dataset subset = data;
  subset.x.resize(kB + 3);  // forces a partial tail block
  subset.y.resize(kB + 3);
  const QuantizedDataset q = quantize_dataset(subset, 4);
  ASSERT_TRUE(q.has_blocked());
  ASSERT_EQ(q.block_count(), 2u);
  for (std::size_t i = 0; i < q.size(); ++i) {
    for (std::size_t f = 0; f < q.n_features; ++f) {
      ASSERT_EQ(q.block(i / kB)[f * kB + i % kB], q.x[i * q.n_features + f]);
    }
  }
  // Tail lanes are zero-filled.
  for (std::size_t j = q.size() % kB; j < kB; ++j) {
    for (std::size_t f = 0; f < q.n_features; ++f) {
      ASSERT_EQ(q.block(1)[f * kB + j], 0);
    }
  }
}

TEST(InferSimd, DispatchReportsAvailabilityHonestly) {
  EXPECT_TRUE(simd::isa_available(simd::Isa::kScalar));
  EXPECT_NE(simd::layer_block_kernel(simd::Isa::kScalar), nullptr);
  // Whatever the dispatcher picked must actually have a kernel.
  EXPECT_TRUE(simd::isa_available(simd::active_isa()));
  EXPECT_NE(simd::layer_block_kernel(simd::active_isa()), nullptr);
  EXPECT_STREQ(simd::isa_name(simd::Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kAvx2), "avx2");
  EXPECT_STREQ(simd::isa_name(simd::Isa::kNeon), "neon");
  // At most one native vector ISA exists per machine.
  EXPECT_FALSE(simd::isa_available(simd::Isa::kAvx2) &&
               simd::isa_available(simd::Isa::kNeon));
  // Unavailable ISAs are a loud error, not a silent fallback.
  for (const simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (simd::isa_available(isa)) continue;
    EXPECT_EQ(simd::layer_block_kernel(isa), nullptr);
    const Dataset data = scaled_named_dataset("seeds", 3);
    const Mlp model = random_model({data.n_features(), 4, data.n_classes}, 5, 0.2);
    const QuantizedMlp engine =
        QuantizedMlp::from_float(model, QuantSpec::uniform(2, 4, 4));
    EXPECT_THROW((void)engine.accuracy_blocked(quantize_dataset(data, 4), isa),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace pnm
