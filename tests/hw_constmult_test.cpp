/// Tests for the bespoke constant-coefficient multiplier: exhaustive
/// functional correctness over the paper's weight-code range and the cost
/// properties (zero/power-of-two free, CSD cheaper than binary).

#include "pnm/hw/constmult.hpp"

#include <gtest/gtest.h>

#include "pnm/util/bits.hpp"

namespace pnm::hw {
namespace {

struct Harness {
  Netlist nl;
  std::vector<std::uint8_t> inputs;

  Word input_word(int width, std::int64_t value) {
    const auto bus = nl.add_input_bus("x", width);
    for (int b = 0; b < width; ++b) {
      inputs.push_back(static_cast<std::uint8_t>((value >> b) & 1));
    }
    return from_unsigned_bus(bus);
  }

  std::int64_t value_of(const Word& w) {
    return word_value(w, nl.simulate(inputs));
  }
};

TEST(ConstMult, ZeroCoefficientIsNoHardware) {
  Harness h;
  const Word x = h.input_word(4, 9);
  const Word p = const_mult(h.nl, x, 0);
  EXPECT_TRUE(p.is_const_zero());
  EXPECT_EQ(h.nl.gate_count(), 0U);
  EXPECT_EQ(h.value_of(p), 0);
}

TEST(ConstMult, PowerOfTwoIsPureWiring) {
  for (std::int64_t coeff : {1LL, 2LL, 4LL, 8LL, 16LL}) {
    Harness h;
    const Word x = h.input_word(4, 11);
    const Word p = const_mult(h.nl, x, coeff);
    EXPECT_EQ(h.nl.gate_count(), 0U) << "coeff=" << coeff;
    EXPECT_EQ(h.value_of(p), 11 * coeff);
  }
}

TEST(ConstMult, NegativePowerOfTwoCostsOneNegation) {
  Harness h;
  const Word x = h.input_word(4, 11);
  const Word p = const_mult(h.nl, x, -4);
  EXPECT_GT(h.nl.gate_count(), 0U);
  EXPECT_EQ(h.value_of(p), -44);
  EXPECT_EQ(const_mult_adder_count(-4), 1);
}

TEST(ConstMult, RejectsSignedInput) {
  Netlist nl;
  Word fake;
  fake.bits = {kConst0};
  fake.is_signed = true;
  fake.lo = -1;
  fake.hi = 0;
  EXPECT_THROW(const_mult(nl, fake, 3), std::invalid_argument);
}

TEST(ConstMult, ExhaustiveOverEightBitWeightCodes) {
  // Every signed 8-bit weight code times every corner/random 4-bit input.
  const std::vector<std::int64_t> xs = {0, 1, 7, 8, 15};
  for (std::int64_t coeff = -127; coeff <= 127; ++coeff) {
    for (std::int64_t xv : xs) {
      Harness h;
      const Word x = h.input_word(4, xv);
      const Word p = const_mult(h.nl, x, coeff);
      ASSERT_EQ(h.value_of(p), coeff * xv) << coeff << "*" << xv;
      // Range metadata is exact.
      EXPECT_EQ(p.lo, std::min<std::int64_t>(0, coeff * 15));
      EXPECT_EQ(p.hi, std::max<std::int64_t>(0, coeff * 15));
    }
  }
}

TEST(ConstMult, BinaryRecodingAlsoCorrect) {
  const MultOptions binary{/*use_csd=*/false};
  for (std::int64_t coeff = -63; coeff <= 63; ++coeff) {
    Harness h;
    const Word x = h.input_word(3, 5);
    const Word p = const_mult(h.nl, x, coeff, binary);
    ASSERT_EQ(h.value_of(p), coeff * 5) << coeff;
  }
}

TEST(ConstMult, CsdNeverCostsMoreAddersThanBinary) {
  for (std::int64_t coeff = -255; coeff <= 255; ++coeff) {
    EXPECT_LE(const_mult_adder_count(coeff, MultOptions{true}),
              const_mult_adder_count(coeff, MultOptions{false}))
        << "coeff=" << coeff;
  }
}

TEST(ConstMult, CsdStrictlyCheaperOnRunsOfOnes) {
  // 0b111 = 7: binary 2 adders, CSD (8-1) 1 adder.
  EXPECT_EQ(const_mult_adder_count(7, MultOptions{false}), 2);
  EXPECT_EQ(const_mult_adder_count(7, MultOptions{true}), 1);
  // 0b101111 = 47 = 48-1 = 32+16-1: CSD 2 adders, binary 4.
  EXPECT_EQ(const_mult_adder_count(47, MultOptions{false}), 4);
  EXPECT_EQ(const_mult_adder_count(47, MultOptions{true}), 2);
}

TEST(ConstMult, AdderCountMatchesDigitStructure) {
  EXPECT_EQ(const_mult_adder_count(0), 0);
  EXPECT_EQ(const_mult_adder_count(1), 0);
  EXPECT_EQ(const_mult_adder_count(-1), 1);   // pure negation row
  EXPECT_EQ(const_mult_adder_count(3), 1);    // 4 - 1
  EXPECT_EQ(const_mult_adder_count(5), 1);    // 4 + 1
  EXPECT_EQ(const_mult_adder_count(-5), 2);   // -(4+1): two sub rows
}

TEST(ConstMult, GateAreaGrowsWithDigitCount) {
  const auto& tech = TechLibrary::egt();
  // 5 (two digits) vs 85 = 0b1010101 (four digits): more digits, more area.
  Harness h5;
  const Word x5 = h5.input_word(4, 3);
  const_mult(h5.nl, x5, 5);
  Harness h85;
  const Word x85 = h85.input_word(4, 3);
  const_mult(h85.nl, x85, 85);
  EXPECT_LT(h5.nl.area_mm2(tech), h85.nl.area_mm2(tech));
}

TEST(ConstMult, SmallerWeightCodesAreCheaperOnAverage) {
  // The §II-A mechanism: average multiplier cost rises with bit-width.
  const auto& tech = TechLibrary::egt();
  auto mean_area = [&tech](int bits) {
    const std::int64_t qmax = (std::int64_t{1} << (bits - 1)) - 1;
    double total = 0.0;
    for (std::int64_t w = 1; w <= qmax; ++w) {
      Netlist nl;
      const auto bus = nl.add_input_bus("x", 4);
      const_mult(nl, from_unsigned_bus(bus), w);
      total += nl.area_mm2(tech);
    }
    return total / static_cast<double>(qmax);
  };
  const double a3 = mean_area(3);
  const double a5 = mean_area(5);
  const double a8 = mean_area(8);
  EXPECT_LT(a3, a5);
  EXPECT_LT(a5, a8);
}

/// Exhaustive x sweep for a sample of tricky coefficients.
class CoeffSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoeffSweep, AllFourBitInputsMultiplyCorrectly) {
  const std::int64_t coeff = GetParam();
  for (std::int64_t xv = 0; xv < 16; ++xv) {
    Harness h;
    const Word x = h.input_word(4, xv);
    const Word p = const_mult(h.nl, x, coeff);
    ASSERT_EQ(h.value_of(p), coeff * xv) << coeff << "*" << xv;
  }
}

INSTANTIATE_TEST_SUITE_P(TrickyCoefficients, CoeffSweep,
                         ::testing::Values(-128, -127, -86, -63, -33, -17, -3, -1, 1, 3,
                                           7, 11, 23, 43, 85, 86, 99, 127));

}  // namespace
}  // namespace pnm::hw
