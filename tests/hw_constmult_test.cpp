/// Tests for the bespoke constant-coefficient multiplier: exhaustive
/// functional correctness over the paper's weight-code range and the cost
/// properties (zero/power-of-two free, CSD cheaper than binary).

#include "pnm/hw/constmult.hpp"

#include <gtest/gtest.h>

#include "pnm/util/bits.hpp"
#include "pnm/util/rng.hpp"

namespace pnm::hw {
namespace {

struct Harness {
  Netlist nl;
  std::vector<std::uint8_t> inputs;

  Word input_word(int width, std::int64_t value) {
    const auto bus = nl.add_input_bus("x", width);
    for (int b = 0; b < width; ++b) {
      inputs.push_back(static_cast<std::uint8_t>((value >> b) & 1));
    }
    return from_unsigned_bus(bus);
  }

  std::int64_t value_of(const Word& w) {
    return word_value(w, nl.simulate(inputs));
  }
};

TEST(ConstMult, ZeroCoefficientIsNoHardware) {
  Harness h;
  const Word x = h.input_word(4, 9);
  const Word p = const_mult(h.nl, x, 0);
  EXPECT_TRUE(p.is_const_zero());
  EXPECT_EQ(h.nl.gate_count(), 0U);
  EXPECT_EQ(h.value_of(p), 0);
}

TEST(ConstMult, PowerOfTwoIsPureWiring) {
  for (std::int64_t coeff : {1LL, 2LL, 4LL, 8LL, 16LL}) {
    Harness h;
    const Word x = h.input_word(4, 11);
    const Word p = const_mult(h.nl, x, coeff);
    EXPECT_EQ(h.nl.gate_count(), 0U) << "coeff=" << coeff;
    EXPECT_EQ(h.value_of(p), 11 * coeff);
  }
}

TEST(ConstMult, NegativePowerOfTwoCostsOneNegation) {
  Harness h;
  const Word x = h.input_word(4, 11);
  const Word p = const_mult(h.nl, x, -4);
  EXPECT_GT(h.nl.gate_count(), 0U);
  EXPECT_EQ(h.value_of(p), -44);
  EXPECT_EQ(const_mult_adder_count(-4), 1);
}

TEST(ConstMult, RejectsSignedInput) {
  Netlist nl;
  Word fake;
  fake.bits = {kConst0};
  fake.is_signed = true;
  fake.lo = -1;
  fake.hi = 0;
  EXPECT_THROW(const_mult(nl, fake, 3), std::invalid_argument);
}

TEST(ConstMult, ExhaustiveOverEightBitWeightCodes) {
  // Every signed 8-bit weight code times every corner/random 4-bit input.
  const std::vector<std::int64_t> xs = {0, 1, 7, 8, 15};
  for (std::int64_t coeff = -127; coeff <= 127; ++coeff) {
    for (std::int64_t xv : xs) {
      Harness h;
      const Word x = h.input_word(4, xv);
      const Word p = const_mult(h.nl, x, coeff);
      ASSERT_EQ(h.value_of(p), coeff * xv) << coeff << "*" << xv;
      // Range metadata is exact.
      EXPECT_EQ(p.lo, std::min<std::int64_t>(0, coeff * 15));
      EXPECT_EQ(p.hi, std::max<std::int64_t>(0, coeff * 15));
    }
  }
}

TEST(ConstMult, BinaryRecodingAlsoCorrect) {
  const MultOptions binary{/*use_csd=*/false};
  for (std::int64_t coeff = -63; coeff <= 63; ++coeff) {
    Harness h;
    const Word x = h.input_word(3, 5);
    const Word p = const_mult(h.nl, x, coeff, binary);
    ASSERT_EQ(h.value_of(p), coeff * 5) << coeff;
  }
}

TEST(ConstMult, CsdNeverCostsMoreAddersThanBinary) {
  for (std::int64_t coeff = -255; coeff <= 255; ++coeff) {
    EXPECT_LE(const_mult_adder_count(coeff, MultOptions{true}),
              const_mult_adder_count(coeff, MultOptions{false}))
        << "coeff=" << coeff;
  }
}

TEST(ConstMult, CsdStrictlyCheaperOnRunsOfOnes) {
  // 0b111 = 7: binary 2 adders, CSD (8-1) 1 adder.
  EXPECT_EQ(const_mult_adder_count(7, MultOptions{false}), 2);
  EXPECT_EQ(const_mult_adder_count(7, MultOptions{true}), 1);
  // 0b101111 = 47 = 48-1 = 32+16-1: CSD 2 adders, binary 4.
  EXPECT_EQ(const_mult_adder_count(47, MultOptions{false}), 4);
  EXPECT_EQ(const_mult_adder_count(47, MultOptions{true}), 2);
}

TEST(ConstMult, AdderCountMatchesDigitStructure) {
  EXPECT_EQ(const_mult_adder_count(0), 0);
  EXPECT_EQ(const_mult_adder_count(1), 0);
  EXPECT_EQ(const_mult_adder_count(-1), 1);   // pure negation row
  EXPECT_EQ(const_mult_adder_count(3), 1);    // 4 - 1
  EXPECT_EQ(const_mult_adder_count(5), 1);    // 4 + 1
  EXPECT_EQ(const_mult_adder_count(-5), 2);   // -(4+1): two sub rows
}

TEST(ConstMult, GateAreaGrowsWithDigitCount) {
  const auto& tech = TechLibrary::egt();
  // 5 (two digits) vs 85 = 0b1010101 (four digits): more digits, more area.
  Harness h5;
  const Word x5 = h5.input_word(4, 3);
  const_mult(h5.nl, x5, 5);
  Harness h85;
  const Word x85 = h85.input_word(4, 3);
  const_mult(h85.nl, x85, 85);
  EXPECT_LT(h5.nl.area_mm2(tech), h85.nl.area_mm2(tech));
}

TEST(ConstMult, SmallerWeightCodesAreCheaperOnAverage) {
  // The §II-A mechanism: average multiplier cost rises with bit-width.
  const auto& tech = TechLibrary::egt();
  auto mean_area = [&tech](int bits) {
    const std::int64_t qmax = (std::int64_t{1} << (bits - 1)) - 1;
    double total = 0.0;
    for (std::int64_t w = 1; w <= qmax; ++w) {
      Netlist nl;
      const auto bus = nl.add_input_bus("x", 4);
      const_mult(nl, from_unsigned_bus(bus), w);
      total += nl.area_mm2(tech);
    }
    return total / static_cast<double>(qmax);
  };
  const double a3 = mean_area(3);
  const double a5 = mean_area(5);
  const double a8 = mean_area(8);
  EXPECT_LT(a3, a5);
  EXPECT_LT(a5, a8);
}

TEST(ConstMult, RangeRefitOverflowIsDetected) {
  // A coefficient large enough that coeff * x.hi wraps int64: the refit
  // products must fail loudly instead of silently mis-sizing the word.
  Netlist nl;
  const auto bus = nl.add_input_bus("x", 8);  // hi = 255
  const Word x = from_unsigned_bus(bus);
  const std::int64_t huge = std::int64_t{1} << 61;
  EXPECT_THROW(const_mult(nl, x, huge), std::overflow_error);
}

TEST(ConstMultShared, ExhaustiveBitExactnessOverCoefficientSets) {
  // Every pair of 6-bit magnitudes, all inputs of a 3-bit word: the
  // shared-DAG products must match coeff * x exactly.
  for (std::int64_t a = 1; a <= 63; ++a) {
    for (std::int64_t b = a; b <= 63; ++b) {
      Harness h;
      const Word x = h.input_word(3, 5);
      const auto products = const_mult_shared(h.nl, x, {a, b});
      const auto state = h.nl.simulate(h.inputs);
      ASSERT_EQ(word_value(products.at(a), state), a * 5) << a << "," << b;
      ASSERT_EQ(word_value(products.at(b), state), b * 5) << a << "," << b;
      // Range metadata stays exact.
      ASSERT_EQ(products.at(a).lo, 0);
      ASSERT_EQ(products.at(a).hi, a * 7);
    }
  }
}

TEST(ConstMultShared, RandomColumnsMatchPerCoefficientProducts) {
  pnm::Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::int64_t> coeffs;
    const int n = 2 + static_cast<int>(rng.uniform_int(5));
    for (int k = 0; k < n; ++k) {
      coeffs.push_back(1 + static_cast<std::int64_t>(rng.uniform_int(127)));
    }
    const std::int64_t xv = static_cast<std::int64_t>(rng.uniform_int(16));
    Harness h;
    const Word x = h.input_word(4, xv);
    const auto products = const_mult_shared(h.nl, x, coeffs);
    const auto state = h.nl.simulate(h.inputs);
    for (const std::int64_t c : coeffs) {
      ASSERT_EQ(word_value(products.at(c), state), c * xv)
          << "trial=" << trial << " c=" << c << " x=" << xv;
    }
  }
}

TEST(ConstMultShared, AreaTracksAndBeatsIndependentChains) {
  // Netlist structural hashing already merges identical chain *prefixes*
  // (5x's whole chain is the first row of 13x's), so tiny sets can tie —
  // and a set can even regress a few percent when the chains' shift
  // ordering folds more constant LSBs than the extracted pairing (e.g.
  // 45 = 13 + 32 beats 45 = 5 + 5<<3 at the gate level).  The guarantees
  // that matter: never materially worse per set, and a clear win in
  // aggregate, where realistic columns have dense subterm overlap.
  const auto& tech = TechLibrary::egt();
  const std::vector<std::vector<std::int64_t>> sets = {
      {5, 13}, {3, 6}, {5, 9, 13, 45}, {3, 5, 9, 13, 27, 45, 85, 119}};
  double shared_total = 0.0;
  double chain_total = 0.0;
  for (const auto& coeffs : sets) {
    Netlist shared_nl;
    const Word xs = from_unsigned_bus(shared_nl.add_input_bus("x", 4));
    const_mult_shared(shared_nl, xs, coeffs);
    Netlist chain_nl;
    const Word xc = from_unsigned_bus(chain_nl.add_input_bus("x", 4));
    for (const std::int64_t c : coeffs) const_mult(chain_nl, xc, c);
    EXPECT_LE(shared_nl.area_mm2(tech), chain_nl.area_mm2(tech) * 1.05);
    shared_total += shared_nl.area_mm2(tech);
    chain_total += chain_nl.area_mm2(tech);
  }
  EXPECT_LT(shared_total, chain_total);
}

TEST(ConstMultShared, ZeroInputWordGivesZeroProducts) {
  Netlist nl;
  Word zero;  // constant-zero word
  const auto products = const_mult_shared(nl, zero, {3, 7});
  EXPECT_TRUE(products.at(3).is_const_zero());
  EXPECT_TRUE(products.at(7).is_const_zero());
  EXPECT_EQ(nl.gate_count(), 0U);
}

TEST(ConstMultShared, RejectsNonPositiveCoefficients) {
  Netlist nl;
  const Word x = from_unsigned_bus(nl.add_input_bus("x", 3));
  EXPECT_THROW(const_mult_shared(nl, x, {3, 0}), std::invalid_argument);
  EXPECT_THROW(const_mult_shared(nl, x, {-5}), std::invalid_argument);
}

TEST(ConstMultShared, LabelsSharedIntermediates) {
  Netlist nl;
  const Word x = from_unsigned_bus(nl.add_input_bus("x", 4));
  const_mult_shared(nl, x, {5, 13}, MultOptions{}, "l0_x0");
  bool found = false;
  for (const auto& [net, label] : nl.net_labels()) {
    if (label.rfind("l0_x0_t5[", 0) == 0) found = true;
  }
  EXPECT_TRUE(found) << "expected the shared 5x word to be labeled";
}

/// Exhaustive x sweep for a sample of tricky coefficients.
class CoeffSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoeffSweep, AllFourBitInputsMultiplyCorrectly) {
  const std::int64_t coeff = GetParam();
  for (std::int64_t xv = 0; xv < 16; ++xv) {
    Harness h;
    const Word x = h.input_word(4, xv);
    const Word p = const_mult(h.nl, x, coeff);
    ASSERT_EQ(h.value_of(p), coeff * xv) << coeff << "*" << xv;
  }
}

INSTANTIATE_TEST_SUITE_P(TrickyCoefficients, CoeffSweep,
                         ::testing::Values(-128, -127, -86, -63, -33, -17, -3, -1, 1, 3,
                                           7, 11, 23, 43, 85, 86, 99, 127));

}  // namespace
}  // namespace pnm::hw
