/// Tests for the integer golden model: agreement with the fake-quantized
/// float model (the scale-invariance argument of DESIGN.md §5), range
/// analysis, and the sharing metrics.

#include "pnm/core/qmlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pnm/util/bits.hpp"

namespace pnm {
namespace {

Mlp random_net(const std::vector<std::size_t>& topology, std::uint64_t seed) {
  Rng rng(seed);
  return Mlp(topology, rng);
}

std::vector<double> random_unit_sample(std::size_t n, Rng& rng) {
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform();
  return x;
}

TEST(QuantizedMlp, ShapesAndMetadata) {
  const Mlp net = random_net({5, 4, 3}, 1);
  const auto q = QuantizedMlp::from_float(net, QuantSpec::uniform(2, 6, 4));
  EXPECT_EQ(q.layer_count(), 2U);
  EXPECT_EQ(q.input_size(), 5U);
  EXPECT_EQ(q.output_size(), 3U);
  EXPECT_EQ(q.input_bits(), 4);
  EXPECT_EQ(q.layer(0).weight_bits, 6);
  EXPECT_EQ(q.layer(0).act, Activation::kRelu);
  EXPECT_EQ(q.layer(1).act, Activation::kIdentity);
}

TEST(QuantizedMlp, RejectsNonLowerableActivations) {
  Rng rng(2);
  Mlp net({3, 3, 2}, rng, Activation::kSigmoid);
  EXPECT_THROW(QuantizedMlp::from_float(net, QuantSpec::uniform(2, 4)),
               std::invalid_argument);
}

/// The central equivalence: integer inference must predict exactly like
/// the fake-quantized float model with quantized inputs (ReLU/argmax
/// scale invariance + rescaled biases).
TEST(QuantizedMlp, MatchesFakeQuantizedFloatModel) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Mlp net = random_net({7, 5, 4}, 100 + seed);
    const auto spec = QuantSpec::uniform(2, 5, 4);
    const auto q = QuantizedMlp::from_float(net, spec);

    // Float twin with fake-quantized weights AND quantized inputs, biases
    // snapped to the accumulator grid like the integer model does.
    Mlp twin = net;
    fake_quantize_mlp(net, twin, spec);
    double act_scale = 1.0 / 15.0;
    for (std::size_t li = 0; li < twin.layer_count(); ++li) {
      const double ws = quantization_scale(net.layer(li).weights, 5);
      const double acc_scale = ws * act_scale;
      for (auto& b : twin.layer(li).bias) {
        b = acc_scale > 0 ? std::llround(b / acc_scale) * acc_scale : b;
      }
      if (acc_scale > 0) act_scale = acc_scale;
    }

    Rng rng(seed);
    int agree = 0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      const auto x = random_unit_sample(7, rng);
      const auto xq = quantize_input(x, 4);
      std::vector<double> x_dequant(x.size());
      for (std::size_t j = 0; j < x.size(); ++j) {
        x_dequant[j] = static_cast<double>(xq[j]) / 15.0;
      }
      if (twin.predict(x_dequant) == q.predict(x)) ++agree;
    }
    // Exact agreement up to float rounding at argmax ties.
    EXPECT_GE(agree, n - 2) << "seed " << seed;
  }
}

TEST(QuantizedMlp, ForwardComputesKnownValues) {
  // Hand-built 2->2->2 integer model.
  QuantizedMlp q = [] {
    DenseLayer l1;
    l1.weights = Matrix(2, 2, {3.0, -1.0, 2.0, 2.0});
    l1.bias = {0.0, 0.0};
    l1.act = Activation::kRelu;
    DenseLayer l2;
    l2.weights = Matrix(2, 2, {1.0, -2.0, -3.0, 1.0});
    l2.bias = {0.0, 0.0};
    l2.act = Activation::kIdentity;
    Mlp net({l1, l2});
    // bits=3 -> qmax=3; layer1 absmax=3 -> scale 1 -> codes == weights.
    return QuantizedMlp::from_float(net, QuantSpec::uniform(2, 3, 2));
  }();
  ASSERT_EQ(q.layer(0).weight(0, 0), 3);
  ASSERT_EQ(q.layer(0).weight(0, 1), -1);
  const auto out = q.forward({3, 1});  // l1: (9-1, 6+2) = (8, 8)
  ASSERT_EQ(out.size(), 2U);
  // l2 codes: absmax 3 -> scale 1: (8 - 16, -24 + 8) = (-8, -16)
  EXPECT_EQ(out[0], -8);
  EXPECT_EQ(out[1], -16);
  EXPECT_EQ(q.predict_quantized({3, 1}), 0U);
}

TEST(QuantizedMlp, ReluClampsNegativeAccumulators) {
  DenseLayer l1;
  l1.weights = Matrix(1, 1, {-1.0});
  l1.bias = {0.0};
  l1.act = Activation::kRelu;
  DenseLayer l2;
  l2.weights = Matrix(2, 1, {1.0, -1.0});
  l2.bias = {0.0, 0.0};
  l2.act = Activation::kIdentity;
  Mlp net({l1, l2});
  const auto q = QuantizedMlp::from_float(net, QuantSpec::uniform(2, 2, 2));
  const auto out = q.forward({3});
  EXPECT_EQ(out[0], 0);  // hidden clamped to 0
  EXPECT_EQ(out[1], 0);
}

TEST(QuantizedMlp, PreactRangesAreSoundAndTight) {
  const Mlp net = random_net({4, 3, 3}, 7);
  const auto q = QuantizedMlp::from_float(net, QuantSpec::uniform(2, 4, 3));
  const auto ranges = q.neuron_preact_ranges();
  ASSERT_EQ(ranges.size(), 2U);
  ASSERT_EQ(ranges[0].size(), 3U);

  // Soundness: random inputs never escape the computed ranges.
  Rng rng(8);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::int64_t> xq(4);
    for (auto& v : xq) v = static_cast<std::int64_t>(rng.uniform_int(std::uint64_t{8}));
    // Recompute layer-0 preacts by hand.
    for (std::size_t r = 0; r < 3; ++r) {
      std::int64_t acc = q.layer(0).bias[r];
      for (std::size_t c = 0; c < 4; ++c) acc += q.layer(0).weight(r, c) * xq[c];
      EXPECT_GE(acc, ranges[0][r].lo);
      EXPECT_LE(acc, ranges[0][r].hi);
    }
  }

  // Tightness at layer 0: extremes are achieved by the corner inputs.
  for (std::size_t r = 0; r < 3; ++r) {
    std::int64_t lo = q.layer(0).bias[r];
    std::int64_t hi = q.layer(0).bias[r];
    for (std::size_t c = 0; c < 4; ++c) {
      const int w = q.layer(0).weight(r, c);
      if (w > 0) {
        hi += static_cast<std::int64_t>(w) * 7;
      } else {
        lo += static_cast<std::int64_t>(w) * 7;
      }
    }
    EXPECT_EQ(ranges[0][r].lo, lo);
    EXPECT_EQ(ranges[0][r].hi, hi);
  }
}

TEST(QuantizedMlp, NonzeroWeightCount) {
  DenseLayer l1;
  l1.weights = Matrix(2, 2, {0.0, 1.0, -1.0, 0.0});
  l1.bias = {0, 0};
  l1.act = Activation::kRelu;
  DenseLayer l2;
  l2.weights = Matrix(2, 2, {1.0, 0.0, 0.0, 0.0});
  l2.bias = {0, 0};
  l2.act = Activation::kIdentity;
  const auto q = QuantizedMlp::from_float(Mlp({l1, l2}), QuantSpec::uniform(2, 2, 2));
  EXPECT_EQ(q.nonzero_weights(), 3U);
}

TEST(QuantizedMlp, SharedMultiplierCountsExcludeTrivialCoefficients) {
  // With 3-bit quantization (qmax = 3) and abs-max 3 the scale is 1, so
  // codes equal the float values below.
  // Layer 1 column 0: codes {3, 3} -> one shared multiplier.
  // Layer 1 column 1: codes {2, 0} -> power of two and zero -> none.
  DenseLayer l1;
  l1.weights = Matrix(2, 2, {3.0, 2.0, 3.0, 0.0});
  l1.bias = {0, 0};
  l1.act = Activation::kRelu;
  // Layer 2 column 0: codes {3, 3} -> one; column 1: codes {2, 2} -> none.
  DenseLayer l2;
  l2.weights = Matrix(2, 2, {3.0, 2.0, 3.0, 2.0});
  l2.bias = {0, 0};
  l2.act = Activation::kIdentity;
  const auto q = QuantizedMlp::from_float(Mlp({l1, l2}), QuantSpec::uniform(2, 3, 2));
  const auto counts = q.shared_multiplier_counts();
  ASSERT_EQ(counts.size(), 2U);
  EXPECT_EQ(counts[0], 1U);  // the shared |3| in column 0
  EXPECT_EQ(counts[1], 1U);  // the shared |3|; the |2|s are wiring
}

TEST(QuantizedMlp, AccuracyRunsOnDataset) {
  const Mlp net = random_net({4, 4, 3}, 9);
  const auto q = QuantizedMlp::from_float(net, QuantSpec::uniform(2, 6, 4));
  Dataset d;
  d.n_classes = 3;
  Rng rng(10);
  for (int i = 0; i < 30; ++i) {
    d.x.push_back(random_unit_sample(4, rng));
    d.y.push_back(static_cast<std::size_t>(rng.uniform_int(std::uint64_t{3})));
  }
  const double acc = q.accuracy(d);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

/// High-precision quantization should almost never change predictions.
class HighBitsFidelity : public ::testing::TestWithParam<int> {};

TEST_P(HighBitsFidelity, AgreesWithFloatModel) {
  const int bits = GetParam();
  const Mlp net = random_net({6, 5, 4}, 30);
  const auto q = QuantizedMlp::from_float(net, QuantSpec::uniform(2, bits, 8));
  Rng rng(31);
  int agree = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    const auto x = random_unit_sample(6, rng);
    if (net.predict(x) == q.predict(x)) ++agree;
  }
  EXPECT_GE(static_cast<double>(agree) / n, 0.95) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(HighPrecision, HighBitsFidelity, ::testing::Values(8, 10, 12));

}  // namespace
}  // namespace pnm
