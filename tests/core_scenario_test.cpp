/// Tests for the scenario-matrix layer: spec validation, grid expansion
/// order, cell fingerprints separating every axis, .scell round-trips,
/// the grid-spec file parser, and a tiny end-to-end grid — determinism of
/// grid_json/drift_report across reruns, warm-store resume with zero
/// fresh evaluations, and worker/collect matching the serial run.

#include "pnm/core/scenario.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>

#include "pnm/util/fileio.hpp"

namespace pnm {
namespace {

/// Tiny-but-real scenario: one small dataset, default topology, short GA.
ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.datasets = {"seeds"};
  spec.seeds = {5};
  spec.base.train.epochs = 12;
  spec.base.finetune_epochs = 3;
  spec.ga_finetune_epochs = 1;
  spec.ga.population = 8;
  spec.ga.generations = 3;
  spec.drifts = {{"noise", 0.05, 0.0, 11}, {"shift", 0.0, 0.3, 12}};
  return spec;
}

std::string fresh_store_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "pnm_scenario_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ScenarioSpec, Validation) {
  ScenarioSpec spec = tiny_spec();
  spec.datasets = {};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.datasets = {"seeds", "seeds"};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.datasets = {"no-such-dataset"};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.datasets = {"synth:bogus"};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.datasets = {"synth:f8:c3:n600:sep2:ord0:k1:ln0.05"};  // valid token
  EXPECT_NO_THROW(spec.validate());
  spec = tiny_spec();
  spec.topologies = {};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.topologies = {{16, 8}, {16, 8}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.topologies = {{8, 0}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.input_bits = {0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.input_bits = {4, 4};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.tech_nodes = {"no-such-node"};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.seeds = {};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.drifts = {{"a", 0.1, 0.0, 1}, {"a", 0.2, 0.0, 2}};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.fidelity_tolerance = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.ga.population = 1;  // GaConfig::validate rejects
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpec, DriftValidation) {
  DriftSpec drift{"ok", 0.1, 0.2, 1};
  EXPECT_NO_THROW(drift.validate());
  drift.name = "";
  EXPECT_THROW(drift.validate(), std::invalid_argument);
  drift.name = "has space";
  EXPECT_THROW(drift.validate(), std::invalid_argument);
  drift.name = "has:colon";
  EXPECT_THROW(drift.validate(), std::invalid_argument);
  drift = {"ok", -0.1, 0.0, 1};
  EXPECT_THROW(drift.validate(), std::invalid_argument);
  drift = {"ok", 0.0, 1.0, 1};  // shift must stay below 1
  EXPECT_THROW(drift.validate(), std::invalid_argument);
  drift = {"ok", 0.0, 0.0, 1};  // identity drift is allowed
  EXPECT_NO_THROW(drift.validate());
}

TEST(ScenarioSpec, ExpandOrderAndCellIds) {
  ScenarioSpec spec = tiny_spec();
  spec.datasets = {"seeds", "redwine"};
  spec.topologies = {{}, {16, 8}};
  spec.input_bits = {4, 6};
  spec.tech_nodes = {"egt", "egt_lowcost"};
  spec.seeds = {5, 7};
  const std::vector<ScenarioCell> cells = spec.expand();
  ASSERT_EQ(cells.size(), 32u);
  // Datasets-major, then topology, bits, tech, seeds-minor.
  EXPECT_EQ(cells[0].id(), "seeds__hdef__b4__egt__s5");
  EXPECT_EQ(cells[1].id(), "seeds__hdef__b4__egt__s7");
  EXPECT_EQ(cells[2].id(), "seeds__hdef__b4__egt_lowcost__s5");
  EXPECT_EQ(cells[4].id(), "seeds__hdef__b6__egt__s5");
  EXPECT_EQ(cells[8].id(), "seeds__h16-8__b4__egt__s5");
  EXPECT_EQ(cells[16].id(), "redwine__hdef__b4__egt__s5");
  EXPECT_EQ(cells[31].id(), "redwine__h16-8__b6__egt_lowcost__s7");
}

TEST(ScenarioSpec, FingerprintSeparatesEveryAxis) {
  const ScenarioSpec spec = tiny_spec();
  const ScenarioCell cell = spec.expand().front();
  const std::string base = scenario_cell_fingerprint(spec, cell);
  EXPECT_EQ(base, scenario_cell_fingerprint(spec, cell));  // deterministic

  ScenarioCell other = cell;
  other.input_bits = 6;
  EXPECT_NE(base, scenario_cell_fingerprint(spec, other));
  other = cell;
  other.tech = "egt_lowcost";
  EXPECT_NE(base, scenario_cell_fingerprint(spec, other));
  other = cell;
  other.hidden = {16, 8};
  EXPECT_NE(base, scenario_cell_fingerprint(spec, other));
  other = cell;
  other.seed += 1;
  EXPECT_NE(base, scenario_cell_fingerprint(spec, other));

  ScenarioSpec other_spec = tiny_spec();
  other_spec.drifts[0].feature_noise = 0.06;
  EXPECT_NE(base, scenario_cell_fingerprint(other_spec, cell));
  other_spec = tiny_spec();
  other_spec.drifts.pop_back();
  EXPECT_NE(base, scenario_cell_fingerprint(other_spec, cell));
  other_spec = tiny_spec();
  other_spec.fidelity_gate_max_hidden = 8;
  EXPECT_NE(base, scenario_cell_fingerprint(other_spec, cell));
  other_spec = tiny_spec();
  other_spec.ga.generations += 1;
  EXPECT_NE(base, scenario_cell_fingerprint(other_spec, cell));

  // The tolerance is applied at report time, never during the run —
  // changing it must NOT invalidate published cells.
  other_spec = tiny_spec();
  other_spec.fidelity_tolerance *= 2.0;
  EXPECT_EQ(base, scenario_cell_fingerprint(other_spec, cell));
}

ScenarioCellResult sample_cell_result() {
  ScenarioCellResult result;
  result.cell = {"seeds", {16, 8}, 6, "egt_lowcost", 9};
  result.baseline = {"baseline", "b8", 0.9, 12.5, 3.25, 0.125};
  result.front = {{"ga", "b4,4|s30,0|c4,0", 0.875, 6.5, 2.0, 0.0625},
                  {"ga", "b3,3|s0,0|c0,0", 0.75, 4.25, 1.5, 0.03125}};
  result.fidelity = {{"b3,3|s0,0|c0,0", 4.0, 4.25, 0.0588235294117647},
                     {"b4,4|s30,0|c4,0", 6.75, 6.5, 0.038461538461538464}};
  result.fidelity_gated = true;
  result.fidelity_max_rel_delta = 0.0588235294117647;
  result.drift = {{"noise", "b3,3|s0,0|c0,0", 0.75, 0.703125},
                  {"noise", "b4,4|s30,0|c4,0", 0.875, 0.84375},
                  {"shift", "b3,3|s0,0|c0,0", 0.75, 0.71875}};
  result.distinct_evaluations = 24;
  result.cache_hits = 7;
  result.cache_misses = 26;
  result.store_loaded = 0;
  result.mcm_hits = 100;
  result.mcm_misses = 13;
  result.seconds = 1.5;
  return result;
}

TEST(ScenarioCellFile, RoundTripsExactly) {
  const ScenarioCellResult result = sample_cell_result();
  const std::string fp = "0123456789abcdef";
  const std::string text = format_scenario_cell(result, fp);
  const std::optional<ScenarioCellResult> parsed = parse_scenario_cell(text, fp);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cell.id(), result.cell.id());
  EXPECT_EQ(parsed->baseline, result.baseline);
  EXPECT_EQ(parsed->front, result.front);
  ASSERT_EQ(parsed->fidelity.size(), result.fidelity.size());
  for (std::size_t i = 0; i < result.fidelity.size(); ++i) {
    EXPECT_EQ(parsed->fidelity[i].genome, result.fidelity[i].genome);
    EXPECT_EQ(parsed->fidelity[i].proxy_area_mm2, result.fidelity[i].proxy_area_mm2);
    EXPECT_EQ(parsed->fidelity[i].netlist_area_mm2,
              result.fidelity[i].netlist_area_mm2);
    EXPECT_EQ(parsed->fidelity[i].rel_delta, result.fidelity[i].rel_delta);
  }
  EXPECT_EQ(parsed->fidelity_gated, result.fidelity_gated);
  EXPECT_EQ(parsed->fidelity_max_rel_delta, result.fidelity_max_rel_delta);
  ASSERT_EQ(parsed->drift.size(), result.drift.size());
  for (std::size_t i = 0; i < result.drift.size(); ++i) {
    EXPECT_EQ(parsed->drift[i].drift, result.drift[i].drift);
    EXPECT_EQ(parsed->drift[i].genome, result.drift[i].genome);
    EXPECT_EQ(parsed->drift[i].base_accuracy, result.drift[i].base_accuracy);
    EXPECT_EQ(parsed->drift[i].drift_accuracy, result.drift[i].drift_accuracy);
  }
  EXPECT_EQ(parsed->distinct_evaluations, result.distinct_evaluations);
  EXPECT_EQ(parsed->seconds, result.seconds);
  // Serialization is itself deterministic.
  EXPECT_EQ(text, format_scenario_cell(*parsed, fp));
}

TEST(ScenarioCellFile, RejectsStaleTruncatedOrMalformed) {
  const ScenarioCellResult result = sample_cell_result();
  const std::string fp = "0123456789abcdef";
  const std::string text = format_scenario_cell(result, fp);
  EXPECT_FALSE(parse_scenario_cell(text, "feedfacefeedface").has_value());
  EXPECT_FALSE(parse_scenario_cell("", fp).has_value());
  EXPECT_FALSE(parse_scenario_cell("garbage\n", fp).has_value());
  // Any truncation must fail the parse, never yield a partial result.
  for (std::size_t cut : {text.size() / 4, text.size() / 2, text.size() - 2}) {
    EXPECT_FALSE(parse_scenario_cell(text.substr(0, cut), fp).has_value())
        << "cut at " << cut;
  }
  // Extra trailing content is malformed too.
  EXPECT_FALSE(parse_scenario_cell(text + "extra\n", fp).has_value());
}

TEST(ScenarioSpecFile, ParsesFullSpec) {
  const std::string text =
      "# scenario grid\n"
      "datasets seeds,synth:f8:c3:n600:sep2:ord0:k1:ln0.05\n"
      "topologies default,24-16\n"
      "input_bits 4,6\n"
      "techs egt,egt_lowcost\n"
      "seeds 5,7\n"
      "drift noise 0.05 0 11\n"
      "drift shift 0 0.3 12\n"
      "pop 8\n"
      "gens 3\n"
      "train_epochs 12\n"
      "finetune 3\n"
      "ga_finetune 1\n"
      "fidelity_tolerance 0.4\n"
      "fidelity_gate_max_hidden 20\n";
  const ScenarioSpec spec = parse_scenario_spec(text);
  EXPECT_EQ(spec.datasets.size(), 2u);
  ASSERT_EQ(spec.topologies.size(), 2u);
  EXPECT_TRUE(spec.topologies[0].empty());
  EXPECT_EQ(spec.topologies[1], (std::vector<std::size_t>{24, 16}));
  EXPECT_EQ(spec.input_bits, (std::vector<int>{4, 6}));
  EXPECT_EQ(spec.tech_nodes, (std::vector<std::string>{"egt", "egt_lowcost"}));
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{5, 7}));
  ASSERT_EQ(spec.drifts.size(), 2u);
  EXPECT_EQ(spec.drifts[0].name, "noise");
  EXPECT_EQ(spec.drifts[0].feature_noise, 0.05);
  EXPECT_EQ(spec.drifts[1].class_prior_shift, 0.3);
  EXPECT_EQ(spec.drifts[1].seed, 12u);
  EXPECT_EQ(spec.ga.population, 8u);
  EXPECT_EQ(spec.ga.generations, 3u);
  EXPECT_EQ(spec.base.train.epochs, 12u);
  EXPECT_EQ(spec.base.finetune_epochs, 3u);
  EXPECT_EQ(spec.ga_finetune_epochs, 1u);
  EXPECT_EQ(spec.fidelity_tolerance, 0.4);
  EXPECT_EQ(spec.fidelity_gate_max_hidden, 20u);
  EXPECT_EQ(spec.expand().size(), 32u);
}

TEST(ScenarioSpecFile, RejectsMalformedLines) {
  EXPECT_THROW(parse_scenario_spec("datasets\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario_spec("datasets seeds\nbogus_key 1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_spec("datasets seeds\ntopologies 8-x\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_spec("datasets seeds\ndrift d 0.1 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_spec("datasets seeds\ninput_bits 99\n"),
               std::invalid_argument);
  // Valid lines but an invalid resulting spec (duplicate seeds).
  EXPECT_THROW(parse_scenario_spec("datasets seeds\nseeds 5,5\n"),
               std::invalid_argument);
}

TEST(Scenario, EndToEndDeterminismResumeAndWorkers) {
  ScenarioSpec spec = tiny_spec();

  // Cold serial run with persistence.
  const std::string store = fresh_store_dir("e2e");
  spec.store_dir = store;
  const ScenarioResult cold = ScenarioRunner(spec).run();
  ASSERT_EQ(cold.cells.size(), 1u);
  const ScenarioCellResult& cell = cold.cells.front();
  EXPECT_FALSE(cell.front.empty());
  EXPECT_GT(cell.distinct_evaluations, 0u);
  // seeds' default topology is {4} <= 16, so the cell is gated.
  EXPECT_TRUE(cell.fidelity_gated);
  ASSERT_FALSE(cell.fidelity.empty());
  // Fidelity records are sorted by genome key and duplicate-free, and
  // every relative delta is consistent with its two absolute areas.
  for (std::size_t i = 0; i + 1 < cell.fidelity.size(); ++i) {
    EXPECT_LT(cell.fidelity[i].genome, cell.fidelity[i + 1].genome);
  }
  double max_delta = 0.0;
  for (const FidelityRecord& f : cell.fidelity) {
    EXPECT_GT(f.netlist_area_mm2, 0.0);
    EXPECT_NEAR(f.rel_delta,
                std::abs(f.proxy_area_mm2 - f.netlist_area_mm2) / f.netlist_area_mm2,
                1e-12);
    max_delta = std::max(max_delta, f.rel_delta);
  }
  EXPECT_EQ(cell.fidelity_max_rel_delta, max_delta);
  // Drift records: drift-major, one per (drift, front genome), accuracies
  // in [0, 1], base accuracy consistent with the published front.
  ASSERT_EQ(cell.drift.size(), 2 * cell.fidelity.size());
  for (const DriftRecord& d : cell.drift) {
    EXPECT_GE(d.drift_accuracy, 0.0);
    EXPECT_LE(d.drift_accuracy, 1.0);
    EXPECT_GE(d.base_accuracy, 0.0);
    EXPECT_LE(d.base_accuracy, 1.0);
  }

  // Warm rerun: byte-identical deterministic reports, zero fresh
  // evaluations (every result served from the store).
  const ScenarioResult warm = ScenarioRunner(spec).run();
  EXPECT_EQ(warm.grid_json(), cold.grid_json());
  EXPECT_EQ(warm.drift_report(), cold.drift_report());
  EXPECT_EQ(warm.total_cache_misses(), 0u);
  EXPECT_GT(warm.total_cache_hits(), 0u);
  EXPECT_GT(warm.total_store_loaded(), 0u);

  // A worker pass over a fresh store publishes every cell; collect
  // reassembles the same deterministic reports.
  ScenarioSpec worker_spec = tiny_spec();
  worker_spec.store_dir = fresh_store_dir("e2e_worker");
  const CampaignWorkerResult pass = ScenarioRunner(worker_spec).run_worker();
  EXPECT_EQ(pass.cells_run, 1u);
  const std::optional<ScenarioResult> collected = collect_scenario(worker_spec);
  ASSERT_TRUE(collected.has_value());
  EXPECT_EQ(collected->grid_json(), cold.grid_json());
  EXPECT_EQ(collected->drift_report(), cold.drift_report());
  // A second pass finds the published cell and runs nothing.
  const CampaignWorkerResult second = ScenarioRunner(worker_spec).run_worker();
  EXPECT_EQ(second.cells_run, 0u);
  EXPECT_EQ(second.cells_skipped_done, 1u);
}

TEST(Scenario, WorkerRequiresStoreAndValidShards) {
  ScenarioSpec spec = tiny_spec();
  EXPECT_THROW(ScenarioRunner(spec).run_worker(), std::invalid_argument);
  EXPECT_THROW(collect_scenario(spec), std::invalid_argument);
  spec.store_dir = fresh_store_dir("shard_args");
  EXPECT_THROW(ScenarioRunner(spec).run_worker(0, 0), std::invalid_argument);
  EXPECT_THROW(ScenarioRunner(spec).run_worker(2, 2), std::invalid_argument);
}

}  // namespace
}  // namespace pnm
