/// Tests for unstructured magnitude pruning and mask-preserving fine-tuning.

#include "pnm/core/prune.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pnm/data/synth.hpp"
#include "pnm/data/scaler.hpp"
#include "pnm/nn/metrics.hpp"

namespace pnm {
namespace {

Mlp random_net(std::uint64_t seed) {
  Rng rng(seed);
  return Mlp({6, 8, 4}, rng);
}

TEST(PruneMask, OnesLikeKeepsEverything) {
  Mlp net = random_net(1);
  const auto mask = PruneMask::ones_like(net);
  EXPECT_EQ(mask.sparsity(), 0.0);
  EXPECT_TRUE(mask.satisfied_by(net));
}

TEST(PruneMask, FromNonzeroTracksZeros) {
  Mlp net = random_net(2);
  net.layer(0).weights(0, 0) = 0.0;
  net.layer(1).weights(1, 2) = 0.0;
  const auto mask = PruneMask::from_nonzero(net);
  EXPECT_NEAR(mask.sparsity(),
              2.0 / static_cast<double>(net.weight_count()), 1e-12);
  EXPECT_TRUE(mask.satisfied_by(net));
}

TEST(PruneMask, ApplyZeroesDroppedWeights) {
  Mlp net = random_net(3);
  auto mask = PruneMask::ones_like(net);
  mask.layer_mask(0)[5] = 0;
  mask.apply(net);
  EXPECT_EQ(net.layer(0).weights.raw()[5], 0.0);
  EXPECT_TRUE(mask.satisfied_by(net));
}

TEST(PruneMask, SatisfiedByDetectsViolation) {
  Mlp net = random_net(4);
  auto mask = PruneMask::ones_like(net);
  mask.layer_mask(0)[0] = 0;
  mask.apply(net);
  net.layer(0).weights.raw()[0] = 0.5;  // resurrect
  EXPECT_FALSE(mask.satisfied_by(net));
}

TEST(PruneMask, ApplyRejectsWrongShape) {
  Mlp net = random_net(5);
  Rng rng(6);
  Mlp other({3, 3, 2}, rng);
  const auto mask = PruneMask::ones_like(net);
  EXPECT_THROW(mask.apply(other), std::invalid_argument);
}

TEST(GlobalPrune, HitsExactSparsity) {
  for (double s : {0.2, 0.3, 0.4, 0.5, 0.6}) {
    Mlp net = random_net(7);
    const auto mask = magnitude_prune_global(net, s);
    const auto total = static_cast<double>(net.weight_count());
    EXPECT_NEAR(mask.sparsity(), s, 1.0 / total + 1e-9) << "s=" << s;
    EXPECT_NEAR(static_cast<double>(net.zero_weight_count()) / total, s,
                1.0 / total + 1e-9);
  }
}

TEST(GlobalPrune, DropsSmallestMagnitudesFirst) {
  Mlp net = random_net(8);
  Mlp original = net;
  magnitude_prune_global(net, 0.5);
  // Every surviving weight must be >= every pruned weight (by |.|).
  double min_kept = 1e9, max_dropped = 0.0;
  for (std::size_t li = 0; li < net.layer_count(); ++li) {
    const auto& pruned = net.layer(li).weights.raw();
    const auto& orig = original.layer(li).weights.raw();
    for (std::size_t i = 0; i < pruned.size(); ++i) {
      if (pruned[i] != 0.0) {
        min_kept = std::min(min_kept, std::fabs(orig[i]));
      } else {
        max_dropped = std::max(max_dropped, std::fabs(orig[i]));
      }
    }
  }
  EXPECT_GE(min_kept, max_dropped);
}

TEST(GlobalPrune, ZeroSparsityIsIdentity) {
  Mlp net = random_net(9);
  const Mlp original = net;
  magnitude_prune_global(net, 0.0);
  for (std::size_t li = 0; li < net.layer_count(); ++li) {
    EXPECT_EQ(net.layer(li).weights, original.layer(li).weights);
  }
}

TEST(GlobalPrune, RejectsBadSparsity) {
  Mlp net = random_net(10);
  EXPECT_THROW(magnitude_prune_global(net, -0.1), std::invalid_argument);
  EXPECT_THROW(magnitude_prune_global(net, 1.0), std::invalid_argument);
}

TEST(PerLayerPrune, EachLayerHitsItsOwnLevel) {
  Mlp net = random_net(11);
  magnitude_prune_per_layer(net, {0.5, 0.25});
  const auto& l0 = net.layer(0).weights;
  const auto& l1 = net.layer(1).weights;
  EXPECT_NEAR(static_cast<double>(l0.zero_count()) / static_cast<double>(l0.size()),
              0.5, 0.03);
  EXPECT_NEAR(static_cast<double>(l1.zero_count()) / static_cast<double>(l1.size()),
              0.25, 0.04);
}

TEST(PerLayerPrune, RejectsArityMismatch) {
  Mlp net = random_net(12);
  EXPECT_THROW(magnitude_prune_per_layer(net, {0.5}), std::invalid_argument);
}

TEST(PruneFineTune, MaskSurvivesTrainingAndAccuracyRecovers) {
  SynthConfig cfg;
  cfg.n_features = 6;
  cfg.n_classes = 4;
  cfg.n_samples = 600;
  cfg.class_separation = 2.2;
  Rng gen(20);
  Dataset data = make_synthetic(cfg, gen);
  Rng rng(21);
  DataSplit split = stratified_split(data, 0.7, 0.0, 0.3, rng);
  MinMaxScaler scaler;
  scale_split(split, scaler);

  Mlp net({6, 8, 4}, rng);
  TrainConfig tc;
  tc.epochs = 40;
  Trainer(tc).fit(net, split.train, rng);
  const double acc_dense = accuracy(net, split.test);

  auto mask = magnitude_prune_global(net, 0.5);
  const double acc_pruned = accuracy(net, split.test);

  TrainConfig ft = tc;
  ft.epochs = 15;
  ft.lr = tc.lr * 0.3;
  Trainer trainer(ft);
  trainer.set_projector(make_mask_projector(mask));
  trainer.fit(net, split.train, rng);
  const double acc_finetuned = accuracy(net, split.test);

  EXPECT_TRUE(mask.satisfied_by(net));  // no resurrection
  EXPECT_GE(acc_finetuned, acc_pruned - 0.02);
  EXPECT_GE(acc_finetuned, acc_dense - 0.08);  // 50% sparsity is survivable
}

/// Sparsity sweep (paper range 20-60%): pruning is monotone in zeros.
class SparsitySweep : public ::testing::TestWithParam<int> {};

TEST_P(SparsitySweep, MoreSparsityMoreZeros) {
  const double s = GetParam() / 100.0;
  Mlp a = random_net(30);
  Mlp b = random_net(30);
  magnitude_prune_global(a, s);
  magnitude_prune_global(b, std::min(0.95, s + 0.1));
  EXPECT_LE(a.zero_weight_count(), b.zero_weight_count());
}

INSTANTIATE_TEST_SUITE_P(PaperRange, SparsitySweep,
                         ::testing::Values(20, 30, 40, 50, 60));

}  // namespace
}  // namespace pnm
