/// Tests for classification metrics.

#include "pnm/nn/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pnm {
namespace {

Dataset four_samples() {
  Dataset d;
  d.name = "toy";
  d.n_classes = 2;
  d.x = {{0.0}, {1.0}, {2.0}, {3.0}};
  d.y = {0, 0, 1, 1};
  return d;
}

TEST(Metrics, AccuracyCountsCorrectPredictions) {
  const Dataset d = four_samples();
  // Threshold classifier at 1.5: perfect.
  const Predictor perfect = [](const std::vector<double>& x) {
    return static_cast<std::size_t>(x[0] > 1.5 ? 1 : 0);
  };
  EXPECT_EQ(accuracy(perfect, d), 1.0);
  // Constant classifier: half right.
  const Predictor constant = [](const std::vector<double>&) { return std::size_t{0}; };
  EXPECT_EQ(accuracy(constant, d), 0.5);
}

TEST(Metrics, AccuracyRejectsEmptyDataset) {
  Dataset empty;
  empty.n_classes = 2;
  const Predictor p = [](const std::vector<double>&) { return std::size_t{0}; };
  EXPECT_THROW(accuracy(p, empty), std::invalid_argument);
}

TEST(Metrics, ConfusionMatrixEntries) {
  const Dataset d = four_samples();
  const Predictor constant = [](const std::vector<double>&) { return std::size_t{1}; };
  const auto cm = confusion_matrix(constant, d);
  EXPECT_EQ(cm[0][1], 2U);
  EXPECT_EQ(cm[1][1], 2U);
  EXPECT_EQ(cm[0][0], 0U);
}

TEST(Metrics, ConfusionMatrixRejectsOutOfRangePrediction) {
  const Dataset d = four_samples();
  const Predictor bad = [](const std::vector<double>&) { return std::size_t{9}; };
  EXPECT_THROW(confusion_matrix(bad, d), std::out_of_range);
}

TEST(Metrics, BalancedAccuracyWeighsClassesEqually) {
  // Imbalanced: 3 of class 0, 1 of class 1.
  Dataset d;
  d.n_classes = 2;
  d.x = {{0}, {0}, {0}, {1}};
  d.y = {0, 0, 0, 1};
  const Predictor constant0 = [](const std::vector<double>&) { return std::size_t{0}; };
  EXPECT_EQ(accuracy(constant0, d), 0.75);
  EXPECT_EQ(balanced_accuracy(constant0, d), 0.5);  // (1.0 + 0.0) / 2
}

TEST(Metrics, MlpAccuracyOverloadAgreesWithPredictor) {
  Rng rng(3);
  Mlp net({1, 4, 2}, rng);
  const Dataset d = four_samples();
  const double a1 = accuracy(net, d);
  const double a2 =
      accuracy([&net](const std::vector<double>& x) { return net.predict(x); }, d);
  EXPECT_EQ(a1, a2);
}

TEST(Metrics, MeanCrossEntropyOfUniformModelIsLogC) {
  // Zero-weight model emits uniform logits -> CE = log(n_classes).
  DenseLayer l;
  l.weights = Matrix(2, 1);
  l.bias = {0.0, 0.0};
  l.act = Activation::kIdentity;
  Mlp net({l});
  const Dataset d = four_samples();
  EXPECT_NEAR(mean_cross_entropy(net, d), std::log(2.0), 1e-12);
}

}  // namespace
}  // namespace pnm
