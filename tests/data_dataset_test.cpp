/// Tests for Dataset validation, splits, and the min-max scaler.

#include "pnm/data/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pnm/data/scaler.hpp"
#include "pnm/data/synth.hpp"

namespace pnm {
namespace {

Dataset labeled_dataset(std::size_t n_per_class, std::size_t n_classes) {
  Dataset d;
  d.name = "grid";
  d.n_classes = n_classes;
  for (std::size_t c = 0; c < n_classes; ++c) {
    for (std::size_t i = 0; i < n_per_class; ++i) {
      d.x.push_back({static_cast<double>(c), static_cast<double>(i)});
      d.y.push_back(c);
    }
  }
  return d;
}

TEST(Dataset, ValidateAcceptsConsistentData) {
  const Dataset d = labeled_dataset(5, 3);
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(d.size(), 15U);
  EXPECT_EQ(d.n_features(), 2U);
}

TEST(Dataset, ValidateRejectsRaggedRows) {
  Dataset d = labeled_dataset(2, 2);
  d.x[1] = {1.0};
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Dataset, ValidateRejectsBadLabels) {
  Dataset d = labeled_dataset(2, 2);
  d.y[0] = 7;
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Dataset, ValidateRejectsCountMismatch) {
  Dataset d = labeled_dataset(2, 2);
  d.y.pop_back();
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Dataset, ClassHistogram) {
  const Dataset d = labeled_dataset(4, 3);
  const auto hist = d.class_histogram();
  ASSERT_EQ(hist.size(), 3U);
  for (std::size_t c : hist) EXPECT_EQ(c, 4U);
}

TEST(StratifiedSplit, PartsAreDisjointAndComplete) {
  const Dataset d = labeled_dataset(20, 3);
  Rng rng(1);
  const auto split = stratified_split(d, 0.6, 0.2, 0.2, rng);
  EXPECT_EQ(split.train.size() + split.val.size() + split.test.size(), d.size());
  // Reconstruct multiset of (x, y) pairs; all original samples appear once.
  auto key = [](const std::vector<double>& x, std::size_t y) {
    return std::to_string(x[0]) + "/" + std::to_string(x[1]) + "#" + std::to_string(y);
  };
  std::multiset<std::string> seen;
  for (const auto* part : {&split.train, &split.val, &split.test}) {
    for (std::size_t i = 0; i < part->size(); ++i) seen.insert(key(part->x[i], part->y[i]));
  }
  std::multiset<std::string> expected;
  for (std::size_t i = 0; i < d.size(); ++i) expected.insert(key(d.x[i], d.y[i]));
  EXPECT_EQ(seen, expected);
}

TEST(StratifiedSplit, PreservesClassProportions) {
  const Dataset d = labeled_dataset(50, 4);
  Rng rng(2);
  const auto split = stratified_split(d, 0.5, 0.25, 0.25, rng);
  const auto hist = split.train.class_histogram();
  for (std::size_t c : hist) EXPECT_EQ(c, 25U);
  const auto vh = split.val.class_histogram();
  for (std::size_t c : vh) EXPECT_NEAR(static_cast<double>(c), 12.5, 1.0);
}

TEST(StratifiedSplit, EveryClassReachesEveryPartEvenWhenRare) {
  Dataset d = labeled_dataset(40, 2);
  // Add a rare third class with 5 samples.
  d.n_classes = 3;
  for (int i = 0; i < 5; ++i) {
    d.x.push_back({9.0, static_cast<double>(i)});
    d.y.push_back(2);
  }
  Rng rng(3);
  const auto split = stratified_split(d, 0.6, 0.2, 0.2, rng);
  EXPECT_GT(split.train.class_histogram()[2], 0U);
  EXPECT_GT(split.test.class_histogram()[2], 0U);
}

TEST(StratifiedSplit, RejectsBadFractions) {
  const Dataset d = labeled_dataset(10, 2);
  Rng rng(4);
  EXPECT_THROW(stratified_split(d, 0.0, 0.5, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(stratified_split(d, 0.7, 0.3, 0.3, rng), std::invalid_argument);
}

TEST(Subset, PreservesOrderAndContent) {
  const Dataset d = labeled_dataset(5, 2);
  const Dataset s = subset(d, {3, 1, 9});
  ASSERT_EQ(s.size(), 3U);
  EXPECT_EQ(s.x[0], d.x[3]);
  EXPECT_EQ(s.x[1], d.x[1]);
  EXPECT_EQ(s.y[2], d.y[9]);
}

TEST(MinMaxScaler, MapsTrainRangeToUnitInterval) {
  Dataset d;
  d.n_classes = 2;
  d.x = {{0.0, 10.0}, {5.0, 20.0}, {10.0, 30.0}};
  d.y = {0, 1, 0};
  MinMaxScaler scaler;
  scaler.fit(d);
  const Dataset scaled = scaler.transform(d);
  EXPECT_EQ(scaled.x[0][0], 0.0);
  EXPECT_EQ(scaled.x[2][0], 1.0);
  EXPECT_EQ(scaled.x[1][1], 0.5);
}

TEST(MinMaxScaler, ClampsOutOfRangeTestSamples) {
  Dataset d;
  d.n_classes = 1;
  d.x = {{0.0}, {10.0}};
  d.y = {0, 0};
  MinMaxScaler scaler;
  scaler.fit(d);
  std::vector<double> low = {-5.0};
  std::vector<double> high = {25.0};
  scaler.transform(low);
  scaler.transform(high);
  EXPECT_EQ(low[0], 0.0);
  EXPECT_EQ(high[0], 1.0);
}

TEST(MinMaxScaler, ConstantFeatureMapsToZero) {
  Dataset d;
  d.n_classes = 1;
  d.x = {{7.0}, {7.0}};
  d.y = {0, 0};
  MinMaxScaler scaler;
  scaler.fit(d);
  std::vector<double> x = {7.0};
  scaler.transform(x);
  EXPECT_EQ(x[0], 0.0);
}

TEST(MinMaxScaler, TransformBeforeFitThrows) {
  MinMaxScaler scaler;
  std::vector<double> x = {1.0};
  EXPECT_THROW(scaler.transform(x), std::logic_error);
}

TEST(MinMaxScaler, ScaleSplitFitsOnTrainOnly) {
  Dataset d = labeled_dataset(30, 2);
  Rng rng(5);
  DataSplit split = stratified_split(d, 0.5, 0.25, 0.25, rng);
  MinMaxScaler scaler;
  scale_split(split, scaler);
  for (const auto& row : split.train.x) {
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
  for (const auto& row : split.test.x) {
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

}  // namespace
}  // namespace pnm
