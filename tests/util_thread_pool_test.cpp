/// Unit tests for the evaluation fan-out thread pool.

#include "pnm/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pnm {
namespace {

TEST(ThreadPool, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3U);
  ThreadPool defaulted(0);
  EXPECT_GE(defaulted.size(), 1U);
  EXPECT_EQ(defaulted.size(), ThreadPool::default_thread_count());
}

TEST(ThreadPool, SubmitRunsTaskAndSignalsFuture) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto f1 = pool.submit([&ran] { ran.fetch_add(1); });
  auto f2 = pool.submit([&ran] { ran.fetch_add(10); });
  f1.get();
  f2.get();
  EXPECT_EQ(ran.load(), 11);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives an exceptional task.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 257;
  std::vector<std::atomic<int>> counts(n);
  pool.parallel_for(n, [&counts](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForHandlesDegenerateSizes) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForWorksWithMoreItemsThanWorkers) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for(100, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 99L * 100L / 2L);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(16,
                        [&completed](std::size_t i) {
                          if (i == 7) throw std::logic_error("bad item");
                          completed.fetch_add(1);
                        }),
      std::logic_error);
  // Iterations claimed after the failure are skipped; the thrower never
  // counts, so at most 15 bodies completed.
  EXPECT_LE(completed.load(), 15);
  // The pool remains usable afterwards.
  std::atomic<int> again{0};
  pool.parallel_for(4, [&again](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 4);
}

TEST(ThreadPool, ParallelForSkipsTailAfterEarlyFailure) {
  // With one worker plus the caller and an immediate failure at i == 0,
  // the remaining iterations must be resolved without running.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(1000,
                                 [&ran](std::size_t i) {
                                   if (i == 0) throw std::runtime_error("first");
                                   ran.fetch_add(1);
                                 }),
               std::runtime_error);
  EXPECT_LT(ran.load(), 1000);
}

TEST(ThreadPool, ParallelForBalancesUnevenWork) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.parallel_for(8, [&done](std::size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 8);
}

}  // namespace
}  // namespace pnm
