/// Tests for CSV import/export (the drop-in path for real UCI files).

#include "pnm/data/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pnm {
namespace {

TEST(Csv, ParsesCommaSeparatedRows) {
  std::istringstream in("1.0,2.0,0\n3.0,4.0,1\n");
  const auto result = load_csv(in);
  EXPECT_EQ(result.data.size(), 2U);
  EXPECT_EQ(result.data.n_features(), 2U);
  EXPECT_EQ(result.data.n_classes, 2U);
  EXPECT_EQ(result.data.x[1][0], 3.0);
  EXPECT_EQ(result.data.y[1], 1U);
}

TEST(Csv, ParsesSemicolonUciWineFormat) {
  std::istringstream in(
      "fixed acidity;volatile acidity;quality\n"
      "7.4;0.70;5\n"
      "7.8;0.88;6\n"
      "6.0;0.20;5\n");
  const auto result = load_csv(in, ';');
  EXPECT_EQ(result.data.size(), 3U);
  EXPECT_EQ(result.data.n_features(), 2U);
  // Labels 5 and 6 are densely re-indexed to 0 and 1, mapping recorded.
  EXPECT_EQ(result.data.n_classes, 2U);
  ASSERT_EQ(result.label_values.size(), 2U);
  EXPECT_EQ(result.label_values[0], 5);
  EXPECT_EQ(result.label_values[1], 6);
  EXPECT_EQ(result.data.y[0], 0U);
  EXPECT_EQ(result.data.y[1], 1U);
}

TEST(Csv, SkipsCommentsAndBlankLines) {
  std::istringstream in("# a comment\n\n1.0,0\n\n2.0,1\n");
  const auto result = load_csv(in);
  EXPECT_EQ(result.data.size(), 2U);
}

TEST(Csv, LabelsReindexedAscending) {
  std::istringstream in("0,9\n1,3\n2,9\n3,7\n");
  const auto result = load_csv(in);
  EXPECT_EQ(result.data.n_classes, 3U);
  EXPECT_EQ(result.label_values, (std::vector<long>{3, 7, 9}));
  EXPECT_EQ(result.data.y[0], 2U);  // 9
  EXPECT_EQ(result.data.y[1], 0U);  // 3
  EXPECT_EQ(result.data.y[3], 1U);  // 7
}

TEST(Csv, RejectsInconsistentColumns) {
  std::istringstream in("1,2,0\n1,1\n");
  EXPECT_THROW(load_csv(in), std::runtime_error);
}

TEST(Csv, RejectsNonFiniteOrHugeLabels) {
  // Regression: a label like "1e300" parses as a valid double but the
  // subsequent double->long cast was undefined behavior.  Each of these
  // must be a typed parse error, not UB.
  for (const char* label : {"1e300", "-1e300", "nan", "inf", "-inf", "1e17"}) {
    std::istringstream in(std::string("1.0,") + label + "\n");
    EXPECT_THROW(load_csv(in), std::runtime_error) << label;
  }
  // The boundary itself (2^53) is still exact and accepted.
  std::istringstream ok("1.0,9007199254740992\n2.0,0\n");
  EXPECT_NO_THROW(load_csv(ok));
}

TEST(Csv, RejectsNonNumericFeature) {
  std::istringstream in("1,2,0\nx,2,1\n");
  EXPECT_THROW(load_csv(in), std::runtime_error);
}

TEST(Csv, RejectsSingleColumnRows) {
  std::istringstream in("42\n");
  EXPECT_THROW(load_csv(in), std::runtime_error);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(load_csv_file("/nonexistent/path.csv"), std::runtime_error);
}

TEST(Csv, SaveLoadRoundTrip) {
  Dataset d;
  d.name = "round";
  d.n_classes = 3;
  d.x = {{0.5, -1.25}, {2.0, 3.5}, {7.0, 0.0}};
  d.y = {2, 0, 1};
  std::stringstream buffer;
  save_csv(d, buffer);
  const auto result = load_csv(buffer);
  ASSERT_EQ(result.data.size(), d.size());
  EXPECT_EQ(result.data.n_classes, 3U);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(result.data.x[i], d.x[i]);
    EXPECT_EQ(result.data.y[i], d.y[i]);
  }
}

}  // namespace
}  // namespace pnm
