/// Front-quality gate for the vectorized fine-tuning math.
///
/// The fast-math softmax (nn/fastmath.hpp) and the sample-blocked backprop
/// (nn/dense_simd.hpp) are declared accuracy-neutral, NOT bit-identical:
/// they perturb training trajectories at the last-ulp level, so fine-tuned
/// fronts are gated on *quality* — realized (accuracy, area) design points
/// — against (a) the libm/per-sample reference computed in-process and
/// (b) a committed golden baseline, both within declared tolerances.
/// Bit-identity gates live elsewhere (core_infer_simd_test for the integer
/// engine, nn_dense_simd_test for the kernel tables).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pnm/core/eval.hpp"
#include "pnm/core/flow.hpp"
#include "pnm/nn/dense_simd.hpp"
#include "pnm/nn/trainer.hpp"

namespace pnm {
namespace {

/// Accuracy is a fraction of a ~40-sample test split, so one flipped
/// sample moves it by ~0.025; the tolerance admits a couple of flips.
constexpr double kAccuracyTolerance = 0.06;
/// Area moves when the fine-tuned weights quantize differently; small
/// trajectory perturbations change a few CSD digits, not the architecture.
constexpr double kAreaRelTolerance = 0.25;

FlowConfig fast_config() {
  FlowConfig config;
  config.dataset_name = "seeds";
  config.seed = 42;
  config.train.epochs = 25;
  config.finetune_epochs = 4;
  return config;
}

MinimizationFlow& seeds_flow() {
  static MinimizationFlow flow = [] {
    MinimizationFlow f(fast_config());
    f.prepare();
    return f;
  }();
  return flow;
}

/// The same structurally distinct candidates core_eval_test batches.
std::vector<Genome> sample_genomes() {
  std::vector<Genome> genomes;
  for (int bits : {2, 3, 4, 6}) {
    Genome g;
    g.weight_bits = {bits, bits};
    g.sparsity_pct = {10 * bits, 0};
    g.clusters = {bits % 2 == 0 ? 2 : 0, 0};
    genomes.push_back(std::move(g));
  }
  return genomes;
}

/// Scoped trainer math mode; restores the shipped defaults on exit.
class ScopedTrainerMath {
 public:
  ScopedTrainerMath(bool fast_softmax, bool blocked, simd::Isa kernels) {
    set_softmax_fast_math(fast_softmax);
    set_blocked_backprop(blocked);
    simd::force_dense_kernels(kernels);
  }
  ~ScopedTrainerMath() {
    set_softmax_fast_math(true);
    set_blocked_backprop(true);
    simd::reset_dense_kernels();
  }
};

TEST(FrontQuality, VectorizedMathMatchesLibmReference) {
  auto& flow = seeds_flow();
  NetlistEvaluator netlist = flow.netlist_evaluator(fast_config().finetune_epochs,
                                                    /*use_test_set=*/true);
  for (const Genome& g : sample_genomes()) {
    DesignPoint fast_point;
    {
      ScopedTrainerMath mode(/*fast_softmax=*/true, /*blocked=*/true,
                             simd::active_isa());
      fast_point = netlist.evaluate(g);
    }
    DesignPoint ref_point;
    {
      ScopedTrainerMath mode(/*fast_softmax=*/false, /*blocked=*/false,
                             simd::Isa::kScalar);
      ref_point = netlist.evaluate(g);
    }
    EXPECT_NEAR(fast_point.accuracy, ref_point.accuracy, kAccuracyTolerance)
        << "genome " << g.key();
    EXPECT_NEAR(fast_point.area_mm2, ref_point.area_mm2,
                kAreaRelTolerance * ref_point.area_mm2)
        << "genome " << g.key();
  }
}

/// Golden baseline for the fine-tuned front under the shipped defaults
/// (fast softmax + blocked backprop).  Regenerate by printing the points
/// this test compares (they are deterministic: the dense kernels are
/// bit-identical on every ISA and fast_exp is a fixed polynomial).
struct GoldenPoint {
  double accuracy;
  double area_mm2;
};

TEST(FrontQuality, MatchesGoldenBaseline) {
  constexpr GoldenPoint kGolden[] = {
      {0.864, 25.079},  // b2,2|s20,0|c2,0
      {0.752, 46.970},  // b3,3|s30,0|c0,0
      {0.872, 72.211},  // b4,4|s40,0|c2,0
      {0.744, 78.776},  // b6,6|s60,0|c2,0
  };
  auto& flow = seeds_flow();
  NetlistEvaluator netlist = flow.netlist_evaluator(fast_config().finetune_epochs,
                                                    /*use_test_set=*/true);
  const std::vector<Genome> genomes = sample_genomes();
  ASSERT_EQ(genomes.size(), std::size(kGolden));
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    const DesignPoint p = netlist.evaluate(genomes[i]);
    SCOPED_TRACE("genome " + genomes[i].key());
    std::cout << "  realized[" << i << "]: accuracy " << p.accuracy << " area "
              << p.area_mm2 << "\n";
    EXPECT_NEAR(p.accuracy, kGolden[i].accuracy, kAccuracyTolerance);
    EXPECT_NEAR(p.area_mm2, kGolden[i].area_mm2,
                kAreaRelTolerance * kGolden[i].area_mm2);
  }
}

}  // namespace
}  // namespace pnm
