/// Tests for the serve wire protocol: encoder/decoder round trips,
/// little-endian layout, and FrameReader's handling of fragmentation,
/// coalescing, and hostile framing (zero-length, oversized, truncated).

#include "pnm/serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace pnm::serve {
namespace {

/// Feeds `bytes` to a reader `step` bytes at a time, collecting frames.
struct Collected {
  std::vector<FrameType> types;
  std::vector<std::vector<std::uint8_t>> payloads;
};

bool feed_in_steps(FrameReader& reader, const std::vector<std::uint8_t>& bytes,
                   std::size_t step, Collected& out) {
  for (std::size_t off = 0; off < bytes.size(); off += step) {
    const std::size_t n = std::min(step, bytes.size() - off);
    const bool ok = reader.feed(bytes.data() + off, n,
                                [&](FrameType type, std::span<const std::uint8_t> payload) {
                                  out.types.push_back(type);
                                  out.payloads.emplace_back(payload.begin(), payload.end());
                                });
    if (!ok) return false;
  }
  return true;
}

TEST(Protocol, PredictRoundTrip) {
  std::vector<std::uint8_t> frame;
  const std::vector<double> features = {0.0, 0.25, 0.999, 1.0, 1e-9};
  encode_predict(frame, 0xDEADBEEF, features);

  // Layout: u32 len | u8 type | u32 id | u32 n | n x f64.
  ASSERT_EQ(frame.size(), 4U + 1U + 4U + 4U + features.size() * 8U);
  EXPECT_EQ(read_u32(frame.data()), frame.size() - 4);
  EXPECT_EQ(frame[4], static_cast<std::uint8_t>(FrameType::kPredict));

  std::uint32_t id = 0;
  std::vector<double> back;
  ASSERT_TRUE(decode_predict({frame.data() + 5, frame.size() - 5}, id, back));
  EXPECT_EQ(id, 0xDEADBEEFU);
  ASSERT_EQ(back.size(), features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    EXPECT_EQ(back[i], features[i]);  // IEEE-754 bit pattern, exact
  }
}

TEST(Protocol, PredictRespRoundTrip) {
  std::vector<std::uint8_t> frame;
  encode_predict_resp(frame, 7, 3, 2);
  PredictResponse resp;
  ASSERT_TRUE(decode_predict_resp({frame.data() + 5, frame.size() - 5}, resp));
  EXPECT_EQ(resp.id, 7U);
  EXPECT_EQ(resp.model_version, 3U);
  EXPECT_EQ(resp.predicted_class, 2U);

  // Wrong payload size is rejected.
  EXPECT_FALSE(decode_predict_resp({frame.data() + 5, frame.size() - 6}, resp));
}

TEST(Protocol, SwapRespRoundTrip) {
  std::vector<std::uint8_t> frame;
  encode_swap_resp(frame, true, "version 4");
  bool ok = false;
  std::string message;
  ASSERT_TRUE(decode_swap_resp({frame.data() + 5, frame.size() - 5}, ok, message));
  EXPECT_TRUE(ok);
  EXPECT_EQ(message, "version 4");

  frame.clear();
  encode_swap_resp(frame, false, "pnm-model: bad header");
  ASSERT_TRUE(decode_swap_resp({frame.data() + 5, frame.size() - 5}, ok, message));
  EXPECT_FALSE(ok);
  EXPECT_EQ(message, "pnm-model: bad header");

  EXPECT_FALSE(decode_swap_resp({}, ok, message));
}

TEST(Protocol, DecodePredictRejectsMalformedPayloads) {
  std::vector<std::uint8_t> frame;
  encode_predict(frame, 1, std::vector<double>{0.5, 0.5});
  std::uint32_t id = 0;
  std::vector<double> features;

  // Truncated payload (count disagrees with byte length).
  EXPECT_FALSE(decode_predict({frame.data() + 5, frame.size() - 5 - 8}, id, features));
  // Declared count too large for the payload.
  std::vector<std::uint8_t> lying(frame.begin() + 5, frame.end());
  lying[4] = 200;  // n_features LE byte 0
  EXPECT_FALSE(decode_predict(lying, id, features));
  // Payload shorter than the fixed header.
  EXPECT_FALSE(decode_predict({frame.data() + 5, std::size_t{7}}, id, features));
}

TEST(Protocol, PredictV2RoundTrip) {
  std::vector<std::uint8_t> frame;
  const std::vector<double> features = {0.5, 0.125, 1.0};
  encode_predict_v2(frame, 41, "beta", features);

  // Layout: u32 len | u8 type | u32 id | u8 name_len | name | u32 n | n x f64.
  ASSERT_EQ(frame.size(), 4U + 1U + 4U + 1U + 4U + 4U + features.size() * 8U);
  EXPECT_EQ(frame[4], static_cast<std::uint8_t>(FrameType::kPredictV2));

  std::uint32_t id = 0;
  std::string name;
  std::vector<double> back;
  ASSERT_TRUE(decode_predict_v2({frame.data() + 5, frame.size() - 5}, id, name, back));
  EXPECT_EQ(id, 41U);
  EXPECT_EQ(name, "beta");
  ASSERT_EQ(back.size(), features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    EXPECT_EQ(back[i], features[i]);  // IEEE-754 bit pattern, exact
  }

  // An empty name is legal (routes to the default model)...
  frame.clear();
  encode_predict_v2(frame, 7, "", features);
  ASSERT_TRUE(decode_predict_v2({frame.data() + 5, frame.size() - 5}, id, name, back));
  EXPECT_TRUE(name.empty());
  // ...and a name beyond the u8 length field is refused at encode time.
  EXPECT_THROW(encode_predict_v2(frame, 7, std::string(kMaxModelName + 1, 'x'), features),
               std::invalid_argument);
}

TEST(Protocol, DecodePredictV2RejectsMalformedPayloads) {
  std::vector<std::uint8_t> frame;
  encode_predict_v2(frame, 1, "m", std::vector<double>{0.5, 0.5});
  std::uint32_t id = 0;
  std::string name;
  std::vector<double> features;

  // Truncated payload (count disagrees with byte length).
  EXPECT_FALSE(
      decode_predict_v2({frame.data() + 5, frame.size() - 5 - 8}, id, name, features));
  // Name length pointing past the payload end.
  std::vector<std::uint8_t> lying(frame.begin() + 5, frame.end());
  lying[4] = 255;  // name_len
  EXPECT_FALSE(decode_predict_v2(lying, id, name, features));
  // Declared feature count too large for the payload.
  lying.assign(frame.begin() + 5, frame.end());
  lying[6] = 200;  // n_features LE byte 0 (after id + name_len + 1-byte name)
  EXPECT_FALSE(decode_predict_v2(lying, id, name, features));
  // Payload shorter than the fixed header.
  EXPECT_FALSE(decode_predict_v2({frame.data() + 5, std::size_t{4}}, id, name, features));
}

TEST(Protocol, SwapV2RoundTrip) {
  std::vector<std::uint8_t> frame;
  encode_swap_req_v2(frame, "beta", "/tmp/next.pnm");
  EXPECT_EQ(frame[4], static_cast<std::uint8_t>(FrameType::kSwapV2));
  std::string name;
  std::string path;
  ASSERT_TRUE(decode_swap_v2({frame.data() + 5, frame.size() - 5}, name, path));
  EXPECT_EQ(name, "beta");
  EXPECT_EQ(path, "/tmp/next.pnm");

  // Name length overrunning the payload is refused.
  std::vector<std::uint8_t> lying(frame.begin() + 5, frame.end());
  lying[0] = 255;
  EXPECT_FALSE(decode_swap_v2(lying, name, path));
  EXPECT_FALSE(decode_swap_v2({}, name, path));
}

TEST(Protocol, ErrorV2RoundTrip) {
  std::vector<std::uint8_t> frame;
  encode_error_v2(frame, ErrorCode::kUnknownModel, "unknown model: gamma");
  EXPECT_EQ(frame[4], static_cast<std::uint8_t>(FrameType::kErrorV2));
  ErrorCode code = ErrorCode::kMalformedFrame;
  std::string message;
  ASSERT_TRUE(decode_error_v2({frame.data() + 5, frame.size() - 5}, code, message));
  EXPECT_EQ(code, ErrorCode::kUnknownModel);
  EXPECT_EQ(message, "unknown model: gamma");
  EXPECT_FALSE(decode_error_v2({}, code, message));
}

TEST(FrameReader, ReassemblesAcrossArbitraryFragmentation) {
  // Three different frames back to back.
  std::vector<std::uint8_t> stream;
  encode_predict(stream, 1, std::vector<double>{0.1, 0.9});
  encode_stats_req(stream);
  encode_swap_req(stream, "/tmp/next-model.pnm");

  for (const std::size_t step : {std::size_t{1}, std::size_t{3}, std::size_t{7}, stream.size()}) {
    FrameReader reader;
    Collected got;
    ASSERT_TRUE(feed_in_steps(reader, stream, step, got)) << "step " << step;
    ASSERT_EQ(got.types.size(), 3U) << "step " << step;
    EXPECT_EQ(got.types[0], FrameType::kPredict);
    EXPECT_EQ(got.types[1], FrameType::kStats);
    EXPECT_EQ(got.types[2], FrameType::kSwap);
    const std::string path(got.payloads[2].begin(), got.payloads[2].end());
    EXPECT_EQ(path, "/tmp/next-model.pnm");
    EXPECT_FALSE(reader.mid_frame());
  }
}

TEST(FrameReader, DetectsTruncatedFrameAtClose) {
  std::vector<std::uint8_t> frame;
  encode_predict(frame, 1, std::vector<double>{0.5});
  FrameReader reader;
  Collected got;
  // Deliver all but the last byte: no frame fires, reader is mid-frame.
  ASSERT_TRUE(feed_in_steps(reader, {frame.begin(), frame.end() - 1}, 4, got));
  EXPECT_TRUE(got.types.empty());
  EXPECT_TRUE(reader.mid_frame());
}

TEST(FrameReader, ZeroLengthFramePoisons) {
  const std::vector<std::uint8_t> zero = {0, 0, 0, 0};
  FrameReader reader;
  Collected got;
  EXPECT_FALSE(feed_in_steps(reader, zero, 4, got));
  EXPECT_TRUE(got.types.empty());
  // Poisoned: even valid bytes are refused afterwards.
  std::vector<std::uint8_t> fine;
  encode_stats_req(fine);
  EXPECT_FALSE(feed_in_steps(reader, fine, fine.size(), got));
}

TEST(FrameReader, OversizedFramePoisonsBeforeBuffering) {
  std::vector<std::uint8_t> huge;
  append_u32(huge, 1 << 30);  // 1 GiB declared; only the header is sent
  FrameReader reader(1 << 10);
  Collected got;
  EXPECT_FALSE(feed_in_steps(reader, huge, 4, got));
  EXPECT_TRUE(got.types.empty());
}

TEST(FrameReader, RespectsCustomCap) {
  std::vector<std::uint8_t> frame;
  encode_swap_req(frame, std::string(64, 'x'));
  {
    FrameReader small(16);
    Collected got;
    EXPECT_FALSE(feed_in_steps(small, frame, frame.size(), got));
  }
  {
    FrameReader big(1 << 10);
    Collected got;
    EXPECT_TRUE(feed_in_steps(big, frame, frame.size(), got));
    ASSERT_EQ(got.types.size(), 1U);
  }
}

}  // namespace
}  // namespace pnm::serve
