/// Figure-shape integration tests: scaled-down versions of the paper's
/// claims that must hold for the full benches to reproduce the figures.
/// (The benches in /bench run the full-size sweeps; these tests pin the
/// qualitative shape at CI-friendly cost.)

#include <gtest/gtest.h>

#include <set>

#include "pnm/core/flow.hpp"
#include "pnm/core/pareto.hpp"

namespace pnm {
namespace {

/// One shared flow per dataset tested here.
MinimizationFlow& flow_for(const std::string& dataset) {
  static std::map<std::string, std::unique_ptr<MinimizationFlow>> flows;
  auto it = flows.find(dataset);
  if (it == flows.end()) {
    FlowConfig config;
    config.dataset_name = dataset;
    config.seed = 42;
    config.train.epochs = 30;
    config.finetune_epochs = 5;
    auto flow = std::make_unique<MinimizationFlow>(config);
    flow->prepare();
    it = flows.emplace(dataset, std::move(flow)).first;
  }
  return *it->second;
}

/// Paper §III: "quantization ... featuring on average 5x area reduction
/// for up to 5% accuracy loss".  Scaled-down claim: on Seeds, the 2-7 bit
/// sweep must contain a point within 5% loss at >= 2x reduction.
TEST(FigureShape, QuantizationGivesLargeGainAtFivePercentLoss) {
  auto& flow = flow_for("seeds");
  const auto points = flow.sweep_quantization(2, 7);
  const auto gain = best_area_gain_at_loss(points, flow.baseline().accuracy,
                                           flow.baseline().area_mm2, 0.05);
  ASSERT_TRUE(gain.has_value());
  EXPECT_GE(*gain, 2.0);
}

/// Pruning at 20-60% sparsity must trade area for bounded accuracy loss.
TEST(FigureShape, PruningFrontIsUsable) {
  auto& flow = flow_for("seeds");
  const auto points = flow.sweep_pruning({0.2, 0.4, 0.6});
  const auto gain = best_area_gain_at_loss(points, flow.baseline().accuracy,
                                           flow.baseline().area_mm2, 0.05);
  ASSERT_TRUE(gain.has_value());
  EXPECT_GE(*gain, 1.2);
  // And sparsity monotonically shrinks the circuit.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].area_mm2, points[i - 1].area_mm2);
  }
}

/// Figure-1 shape: the quantization front dominates the pruning front
/// (higher hypervolume w.r.t. a common reference).
TEST(FigureShape, QuantizationFrontBeatsPruningFront) {
  auto& flow = flow_for("seeds");
  const auto quant = flow.sweep_quantization(2, 7);
  const auto prune = flow.sweep_pruning({0.2, 0.3, 0.4, 0.5, 0.6});
  const double ref_area = flow.baseline().area_mm2;
  const double hv_quant = hypervolume(quant, 0.0, ref_area);
  const double hv_prune = hypervolume(prune, 0.0, ref_area);
  EXPECT_GT(hv_quant, hv_prune);
}

/// Figure-2 shape: the combined GA front must not be dominated by any
/// standalone point, and should beat the best standalone gain @5% loss.
TEST(FigureShape, CombinedGaBeatsStandaloneTechniques) {
  auto& flow = flow_for("seeds");
  const auto quant = flow.sweep_quantization(2, 7);
  const auto prune = flow.sweep_pruning({0.2, 0.4, 0.6});
  const auto cluster = flow.sweep_clustering({2, 4});

  GaConfig ga;
  ga.population = 16;
  ga.generations = 8;
  const auto outcome = flow.run_combined_ga(ga, 2);
  ASSERT_FALSE(outcome.front.empty());

  const double base_acc = flow.baseline().accuracy;
  const double base_area = flow.baseline().area_mm2;
  const double gain_ga =
      best_area_gain_at_loss(outcome.front, base_acc, base_area, 0.05).value_or(1.0);
  double gain_standalone = 1.0;
  for (const auto* sweep : {&quant, &prune, &cluster}) {
    gain_standalone = std::max(
        gain_standalone,
        best_area_gain_at_loss(*sweep, base_acc, base_area, 0.05).value_or(1.0));
  }
  // GA combines all three search spaces, so it can only do at least as
  // well up to search noise; require >= 90% of the best standalone gain
  // and a materially useful gain overall.
  EXPECT_GE(gain_ga, 0.9 * gain_standalone);
  EXPECT_GE(gain_ga, 2.0);
}

/// The wines are the hard ordinal tasks: their float accuracy is low and
/// quantization to moderate bits must not collapse it further than the
/// paper's regime allows.
TEST(FigureShape, WineTaskSurvivesModerateQuantization) {
  auto& flow = flow_for("redwine");
  EXPECT_LT(flow.float_test_accuracy(), 0.80);
  EXPECT_GT(flow.float_test_accuracy(), 0.40);
  const auto points = flow.sweep_quantization(4, 6);
  for (const auto& p : points) {
    EXPECT_GT(p.accuracy, flow.float_test_accuracy() - 0.10) << p.config;
  }
}

/// Normalization sanity for the figure axes: every produced point has
/// area near or below the baseline (weak clustering on a tiny hidden
/// layer can land a few percent above after fine-tuning reshapes the
/// centroids) and accuracy in [0, 1].
TEST(FigureShape, NormalizedAxesAreWellFormed) {
  auto& flow = flow_for("seeds");
  std::vector<DesignPoint> all = flow.sweep_quantization(2, 7);
  const auto prune = flow.sweep_pruning({0.2, 0.6});
  const auto cluster = flow.sweep_clustering({2, 4});
  all.insert(all.end(), prune.begin(), prune.end());
  all.insert(all.end(), cluster.begin(), cluster.end());
  for (const auto& p : all) {
    EXPECT_GT(p.accuracy, 0.0);
    EXPECT_LE(p.accuracy, 1.0);
    EXPECT_LT(p.area_mm2 / flow.baseline().area_mm2, 1.10) << p.technique << " " << p.config;
  }
}

}  // namespace
}  // namespace pnm
