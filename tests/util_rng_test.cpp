/// Tests for pnm::Rng: determinism, distribution sanity, helpers.

#include "pnm/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace pnm {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.next_u64());
  EXPECT_GT(seen.size(), 95U);  // not stuck
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 2.5);
  }
}

TEST(Rng, UniformIntCoversAllValuesUnbiased) {
  Rng rng(11);
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_int(std::uint64_t{5})]++;
  for (int c : counts) EXPECT_NEAR(c, n / 5, n / 50);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(13);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6U);  // all 6 values hit
}

TEST(Rng, UniformIntZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(std::uint64_t{0}), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, RandomPermutationContainsAllIndices) {
  Rng rng(31);
  const auto perm = random_permutation(50, rng);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50U);
  EXPECT_EQ(*seen.begin(), 0U);
  EXPECT_EQ(*seen.rbegin(), 49U);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.split();
  // Child stream should differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.next_u64() == child.next_u64()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(41), b(41);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace pnm
