/// Tests for the composable evaluation layer: pipeline backends, the
/// genome cache decorator, and parallel fan-out determinism.

#include "pnm/core/eval.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "pnm/core/flow.hpp"

namespace pnm {
namespace {

FlowConfig fast_config() {
  FlowConfig config;
  config.dataset_name = "seeds";
  config.seed = 42;
  config.train.epochs = 25;
  config.finetune_epochs = 4;
  return config;
}

/// A shared, lazily-prepared flow so the suite trains Seeds only once.
MinimizationFlow& seeds_flow() {
  static MinimizationFlow flow = [] {
    MinimizationFlow f(fast_config());
    f.prepare();
    return f;
  }();
  return flow;
}

/// A handful of structurally distinct candidates for batch tests.
std::vector<Genome> sample_genomes() {
  std::vector<Genome> genomes;
  for (int bits : {2, 3, 4, 6}) {
    Genome g;
    g.weight_bits = {bits, bits};
    g.sparsity_pct = {10 * bits, 0};
    g.clusters = {bits % 2 == 0 ? 2 : 0, 0};
    genomes.push_back(std::move(g));
  }
  return genomes;
}

void expect_same_point(const DesignPoint& a, const DesignPoint& b) {
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.area_mm2, b.area_mm2);
  EXPECT_EQ(a.power_uw, b.power_uw);
  EXPECT_EQ(a.delay_ms, b.delay_ms);
}

TEST(Eval, FactoriesRequirePrepare) {
  MinimizationFlow flow(fast_config());
  EXPECT_THROW(flow.proxy_evaluator(2), std::logic_error);
  EXPECT_THROW(flow.netlist_evaluator(2), std::logic_error);
}

TEST(Eval, PipelineRejectsArityMismatch) {
  auto& flow = seeds_flow();
  ProxyEvaluator proxy = flow.proxy_evaluator(1);
  Genome bad;
  bad.weight_bits = {4};
  bad.sparsity_pct = {0};
  bad.clusters = {0};  // model has 2 layers
  EXPECT_THROW(proxy.evaluate(bad), std::invalid_argument);
}

TEST(Eval, ProxyMatchesFlowEvaluateGenome) {
  auto& flow = seeds_flow();
  ProxyEvaluator proxy = flow.proxy_evaluator(2);
  NetlistEvaluator netlist = flow.netlist_evaluator(2);
  for (const Genome& g : sample_genomes()) {
    expect_same_point(proxy.evaluate(g), flow.evaluate_genome(g, 2, false, false));
    expect_same_point(netlist.evaluate(g), flow.evaluate_genome(g, 2, true, false));
  }
}

TEST(Eval, NetlistFillsPowerAndDelayProxyDoesNot) {
  auto& flow = seeds_flow();
  const Genome g = sample_genomes().front();
  const DesignPoint exact = flow.netlist_evaluator(1).evaluate(g);
  const DesignPoint proxy = flow.proxy_evaluator(1).evaluate(g);
  EXPECT_GT(exact.power_uw, 0.0);
  EXPECT_GT(exact.delay_ms, 0.0);
  EXPECT_EQ(proxy.power_uw, 0.0);
  EXPECT_EQ(proxy.delay_ms, 0.0);
  EXPECT_GT(proxy.area_mm2, 0.0);
}

TEST(Eval, ShareSubexpressionsKnobFlowsThroughEvaluators) {
  // A second flow with the MCM knob on: both backends must price the
  // shared DAG, never exceeding the unshared flow's costs, and the
  // paper-faithful policy (sharing only for clustered genomes) must
  // normalize the knob off where share_products is off.
  FlowConfig mcm_config = fast_config();
  mcm_config.bespoke.share_subexpressions = true;
  MinimizationFlow mcm_flow(mcm_config);
  mcm_flow.prepare();
  auto& plain_flow = seeds_flow();

  Genome clustered;
  clustered.weight_bits = {8, 8};
  clustered.sparsity_pct = {0, 0};
  clustered.clusters = {4, 4};
  const DesignPoint shared_proxy = mcm_flow.proxy_evaluator(2).evaluate(clustered);
  const DesignPoint plain_proxy = plain_flow.proxy_evaluator(2).evaluate(clustered);
  const DesignPoint shared_exact = mcm_flow.netlist_evaluator(2).evaluate(clustered);
  const DesignPoint plain_exact = plain_flow.netlist_evaluator(2).evaluate(clustered);
  EXPECT_LE(shared_proxy.area_mm2, plain_proxy.area_mm2);
  EXPECT_LE(shared_exact.area_mm2, plain_exact.area_mm2 * 1.0001);
  EXPECT_EQ(shared_proxy.accuracy, plain_proxy.accuracy);  // cost-only knob

  Genome unclustered = clustered;
  unclustered.clusters = {0, 0};
  // share_only_when_clustered forces share_products (and so the MCM
  // knob) off: identical costs with and without the config flag.
  expect_same_point(mcm_flow.proxy_evaluator(2).evaluate(unclustered),
                    plain_flow.proxy_evaluator(2).evaluate(unclustered));
}

TEST(Eval, BatchMatchesSingleEvaluation) {
  auto& flow = seeds_flow();
  ProxyEvaluator proxy = flow.proxy_evaluator(2);
  const std::vector<Genome> genomes = sample_genomes();
  const std::vector<DesignPoint> batch = proxy.evaluate_batch(genomes);
  ASSERT_EQ(batch.size(), genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    expect_same_point(batch[i], proxy.evaluate(genomes[i]));
  }
}

TEST(Eval, ParallelIsBitIdenticalAcrossThreadCounts) {
  auto& flow = seeds_flow();
  ProxyEvaluator proxy = flow.proxy_evaluator(2);
  const std::vector<Genome> genomes = sample_genomes();
  const std::vector<DesignPoint> serial = proxy.evaluate_batch(genomes);
  for (std::size_t threads : {1UL, 2UL, 4UL}) {
    ParallelEvaluator parallel(proxy, threads);
    EXPECT_EQ(parallel.threads(), threads);
    const std::vector<DesignPoint> fanned = parallel.evaluate_batch(genomes);
    ASSERT_EQ(fanned.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      expect_same_point(fanned[i], serial[i]);
      EXPECT_EQ(fanned[i].config, serial[i].config);
    }
  }
}

TEST(Eval, ParallelNetlistIsBitIdenticalToo) {
  auto& flow = seeds_flow();
  NetlistEvaluator netlist = flow.netlist_evaluator(1);
  const std::vector<Genome> genomes = sample_genomes();
  const std::vector<DesignPoint> serial = netlist.evaluate_batch(genomes);
  ParallelEvaluator parallel(netlist, 4);
  const std::vector<DesignPoint> fanned = parallel.evaluate_batch(genomes);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_same_point(fanned[i], serial[i]);
  }
}

TEST(Eval, CachedCountsHitsAndMissesExactly) {
  std::atomic<std::size_t> calls{0};
  FunctionEvaluator inner([&calls](const Genome& g) {
    calls.fetch_add(1);
    return GenomeFitness{0.5, static_cast<double>(g.weight_bits[0])};
  });
  CachedEvaluator cached(inner);
  const std::vector<Genome> genomes = sample_genomes();  // 4 distinct

  // Cold batch: all misses, one inner call each.
  cached.evaluate_batch(genomes);
  EXPECT_EQ(cached.misses(), 4U);
  EXPECT_EQ(cached.hits(), 0U);
  EXPECT_EQ(cached.size(), 4U);
  EXPECT_EQ(calls.load(), 4U);

  // Warm batch: all hits, no inner calls.
  const auto warm = cached.evaluate_batch(genomes);
  EXPECT_EQ(cached.misses(), 4U);
  EXPECT_EQ(cached.hits(), 4U);
  EXPECT_EQ(calls.load(), 4U);
  EXPECT_EQ(warm[1].area_mm2, static_cast<double>(genomes[1].weight_bits[0]));

  // Mixed batch with an in-batch duplicate: the duplicate counts as a
  // miss (it was not cached when requested) but costs only one inner call.
  Genome fresh = genomes[0];
  fresh.weight_bits = {8, 8};
  const std::vector<Genome> mixed = {genomes[0], fresh, fresh};
  cached.evaluate_batch(mixed);
  EXPECT_EQ(cached.hits(), 5U);
  EXPECT_EQ(cached.misses(), 6U);
  EXPECT_EQ(calls.load(), 5U);
  EXPECT_EQ(cached.size(), 5U);

  // Single-genome path.
  cached.evaluate(fresh);
  EXPECT_EQ(cached.hits(), 6U);
  cached.clear();
  EXPECT_EQ(cached.hits(), 0U);
  EXPECT_EQ(cached.misses(), 0U);
  EXPECT_EQ(cached.size(), 0U);
}

TEST(Eval, CachedBatchDedupBookkeepingStaysConsistent) {
  // Regression guard for the one-key-per-genome batch path: heavy in-batch
  // duplication must keep the stats identity (hits + misses == requests),
  // evaluate each distinct genome exactly once, and route every request
  // position to the result of its own genome.
  std::atomic<std::size_t> calls{0};
  FunctionEvaluator inner([&calls](const Genome& g) {
    calls.fetch_add(1);
    return GenomeFitness{0.25, static_cast<double>(g.weight_bits[0] * 10 +
                                                   g.weight_bits[1])};
  });
  CachedEvaluator cached(inner);

  const std::vector<Genome> distinct = sample_genomes();  // 4 distinct
  std::vector<Genome> batch;
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (const Genome& g : distinct) batch.push_back(g);
  }
  const auto points = cached.evaluate_batch(batch);

  EXPECT_EQ(cached.hits() + cached.misses(), batch.size());
  EXPECT_EQ(cached.misses(), batch.size());  // nothing was cached beforehand
  EXPECT_EQ(cached.size(), distinct.size());
  EXPECT_EQ(calls.load(), distinct.size());  // one inner call per distinct genome
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double expected = static_cast<double>(batch[i].weight_bits[0] * 10 +
                                                batch[i].weight_bits[1]);
    EXPECT_EQ(points[i].area_mm2, expected) << "position " << i;
    EXPECT_EQ(points[i].config, batch[i].key()) << "position " << i;
  }

  // A warm replay flips every request to a hit without new inner calls.
  cached.evaluate_batch(batch);
  EXPECT_EQ(cached.hits(), batch.size());
  EXPECT_EQ(cached.misses(), batch.size());
  EXPECT_EQ(calls.load(), distinct.size());
}

TEST(Eval, CacheIsExactUnderRepeatedGaGenerations) {
  std::atomic<std::size_t> calls{0};
  FunctionEvaluator inner([&calls](const Genome& g) {
    calls.fetch_add(1);
    double area = 0.0;
    for (int b : g.weight_bits) area += b;
    return GenomeFitness{1.0 - 0.01 * area, area};
  });
  CachedEvaluator cached(inner);

  GaConfig cfg;
  cfg.population = 12;
  cfg.generations = 5;

  // First run: the GA memoizes per-run, so the cache sees each distinct
  // genome exactly once — all misses, zero hits.
  Rng rng1(7);
  const GaResult r1 = nsga2_search(cfg, 2, cached, rng1);
  EXPECT_EQ(cached.misses(), r1.evaluations);
  EXPECT_EQ(cached.hits(), 0U);
  EXPECT_EQ(calls.load(), r1.evaluations);

  // Second identical run: the GA replays the same genome stream and every
  // lookup hits — the inner evaluator is never called again.
  Rng rng2(7);
  const GaResult r2 = nsga2_search(cfg, 2, cached, rng2);
  EXPECT_EQ(r2.evaluations, r1.evaluations);
  EXPECT_EQ(cached.misses(), r1.evaluations);
  EXPECT_EQ(cached.hits(), r2.evaluations);
  EXPECT_EQ(calls.load(), r1.evaluations);

  // And the search outcome is unchanged.
  ASSERT_EQ(r1.front.size(), r2.front.size());
  for (std::size_t i = 0; i < r1.front.size(); ++i) {
    EXPECT_EQ(r1.front[i].genome, r2.front[i].genome);
  }
}

TEST(Eval, RunGaWithComposedStackMatchesSerialCombinedGa) {
  auto& flow = seeds_flow();
  GaConfig ga;
  ga.population = 8;
  ga.generations = 3;

  // Reference: the serial cached-proxy path (the historical pipeline).
  auto serial = flow.run_combined_ga(ga, /*ga_finetune_epochs=*/1);

  // Same search through an explicitly composed parallel stack.
  ProxyEvaluator proxy = flow.proxy_evaluator(1);
  ParallelEvaluator parallel(proxy, 4);
  CachedEvaluator fitness(parallel);
  auto composed = flow.run_ga(fitness, ga);

  EXPECT_EQ(composed.raw.evaluations, serial.raw.evaluations);
  ASSERT_EQ(composed.raw.front.size(), serial.raw.front.size());
  for (std::size_t i = 0; i < serial.raw.front.size(); ++i) {
    EXPECT_EQ(composed.raw.front[i].genome, serial.raw.front[i].genome);
    EXPECT_EQ(composed.raw.front[i].fitness.accuracy,
              serial.raw.front[i].fitness.accuracy);
    EXPECT_EQ(composed.raw.front[i].fitness.area_mm2,
              serial.raw.front[i].fitness.area_mm2);
  }
  ASSERT_EQ(composed.front.size(), serial.front.size());
  for (std::size_t i = 0; i < serial.front.size(); ++i) {
    expect_same_point(composed.front[i], serial.front[i]);
  }
}

TEST(Eval, EvaluatorNamesDescribeTheStack) {
  auto& flow = seeds_flow();
  ProxyEvaluator proxy = flow.proxy_evaluator(1);
  NetlistEvaluator netlist = flow.netlist_evaluator(1);
  ParallelEvaluator parallel(proxy, 2);
  CachedEvaluator cached(parallel);
  EXPECT_EQ(proxy.name(), "proxy");
  EXPECT_EQ(netlist.name(), "netlist");
  EXPECT_EQ(parallel.name(), "parallel(proxy)x2");
  EXPECT_EQ(cached.name(), "cached(parallel(proxy)x2)");
}

}  // namespace
}  // namespace pnm
