/// Golden bit-exactness tests for the flat (CSR) quantized-inference
/// engine: every output of the packed kernels — forward values, argmax
/// predictions, Dataset accuracy, and the batched QuantizedDataset
/// accuracy — must match the seed commit's dense implementation
/// value-for-value, across random models, all four UCI datasets, and the
/// truncation / ReLU / negative-bias edge cases.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "pnm/core/dense_reference.hpp"
#include "pnm/core/qmlp.hpp"
#include "pnm/core/quantize.hpp"
#include "pnm/data/scaler.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/nn/mlp.hpp"
#include "pnm/util/rng.hpp"

namespace pnm {
namespace {

Mlp random_model(const std::vector<std::size_t>& topology, std::uint64_t seed,
                 double bias_span) {
  Rng rng(seed);
  Mlp model(topology, rng);
  // He-normal init leaves biases at zero; spread them (negative included)
  // so the bias >> s floor path is exercised on both signs.
  for (std::size_t li = 0; li < model.layer_count(); ++li) {
    for (auto& b : model.layer(li).bias) b = rng.normal(0.0, bias_span);
  }
  return model;
}

void expect_bit_identical(const QuantizedMlp& engine, const Dataset& data) {
  const DenseReferenceModel reference(engine);
  const QuantizedDataset qdata = quantize_dataset(data, engine.input_bits());
  InferScratch scratch;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto xq = quantize_input(data.x[i], engine.input_bits());
    // Full forward values, not just the argmax.
    const auto seed_out = reference.forward(xq);
    const auto engine_out = engine.forward(xq);
    ASSERT_EQ(seed_out, engine_out) << "sample " << i;
    // Pre-quantized flat buffer path.
    ASSERT_EQ(engine.predict_quantized_into(qdata.sample(i), scratch),
              reference.predict(data.x[i]))
        << "sample " << i;
  }
  // Both accuracy paths, value-for-value (not approximately).
  const double seed_acc = reference.accuracy(data);
  ASSERT_EQ(engine.accuracy(data), seed_acc);
  ASSERT_EQ(engine.accuracy(qdata), seed_acc);
}

TEST(InferGolden, RandomModelsOnAllFourDatasetsAreBitExact) {
  std::uint64_t seed = 900;
  for (const char* name : {"whitewine", "redwine", "pendigits", "seeds"}) {
    Dataset data = make_named_dataset(name, 11);
    MinMaxScaler scaler;
    scaler.fit(data);
    data = scaler.transform(data);

    for (int bits : {2, 5, 8}) {
      const Mlp model = random_model({data.n_features(), 6, data.n_classes},
                                     ++seed, /*bias_span=*/0.5);
      QuantSpec spec = QuantSpec::uniform(2, bits, 4);
      expect_bit_identical(QuantizedMlp::from_float(model, spec), data);
    }
  }
}

/// The scenario matrix's "wider/deeper" regime: a 64-128-64 stack is far
/// past the printed-scale defaults (4-10 hidden units), so the blocked
/// multi-sample kernels cross block boundaries many times per layer and
/// the accumulators see much longer dot products.  Every inference path —
/// per-sample forward, flat-buffer predict, Dataset accuracy, blocked
/// QuantizedDataset accuracy, and the explicit accuracy_blocked(isa)
/// entry point — must still match the seed commit's dense reference
/// value-for-value.
TEST(InferGolden, WideDeepTopologyIsBitExactOnAllPaths) {
  Dataset data = make_named_dataset("seeds", 31);
  MinMaxScaler scaler;
  scaler.fit(data);
  data = scaler.transform(data);

  std::uint64_t seed = 700;
  for (int bits : {3, 6}) {
    const Mlp model =
        random_model({data.n_features(), 64, 128, 64, data.n_classes}, ++seed,
                     /*bias_span=*/0.5);
    const QuantizedMlp engine =
        QuantizedMlp::from_float(model, QuantSpec::uniform(4, bits, 4));
    expect_bit_identical(engine, data);
    // The explicit blocked entry point at the runtime-dispatched ISA must
    // agree with the reference too (expect_bit_identical already covers
    // the implicit blocked ride inside accuracy(qdata)).
    const DenseReferenceModel reference(engine);
    const QuantizedDataset qdata = quantize_dataset(data, engine.input_bits());
    ASSERT_TRUE(qdata.has_blocked());
    ASSERT_EQ(engine.accuracy_blocked(qdata, simd::active_isa()),
              reference.accuracy(data))
        << "bits " << bits;
  }
}

TEST(InferGolden, TruncationShiftsStayBitExact) {
  Dataset data = make_named_dataset("seeds", 21);
  MinMaxScaler scaler;
  scaler.fit(data);
  data = scaler.transform(data);

  std::uint64_t seed = 400;
  for (int shift : {1, 2, 4, 7}) {
    // Large bias span makes negative accumulator-unit bias codes certain,
    // covering the arithmetic (floor) right-shift of negative biases.
    const Mlp model = random_model({data.n_features(), 5, data.n_classes},
                                   ++seed, /*bias_span=*/2.0);
    QuantSpec spec = QuantSpec::uniform(2, 6, 4);
    spec.acc_shift = {shift, shift};
    const QuantizedMlp engine = QuantizedMlp::from_float(model, spec);
    // Confirm the edge case is actually present, then compare.
    bool has_negative_bias = false;
    for (const auto& l : engine.layers()) {
      for (std::int64_t b : l.bias) has_negative_bias |= (b < 0);
    }
    EXPECT_TRUE(has_negative_bias) << "shift " << shift;
    expect_bit_identical(engine, data);
  }
}

TEST(InferGolden, ReluClampAndPrunedRowsAreBitExact) {
  // Hand-built codes: a fully-pruned row (no CSR entries), an
  // all-negative row (ReLU always clamps), and mixed signs.
  DenseLayer l1;
  l1.weights = Matrix(3, 2, {0.0, 0.0, -3.0, -1.0, 2.0, -2.0});
  l1.bias = {0.0, -1.0, 0.5};
  l1.act = Activation::kRelu;
  DenseLayer l2;
  l2.weights = Matrix(2, 3, {1.0, -2.0, 3.0, 0.0, 0.0, 0.0});
  l2.bias = {-0.25, 0.0};
  l2.act = Activation::kIdentity;
  const Mlp model({l1, l2});

  for (int shift : {0, 1, 3}) {
    QuantSpec spec = QuantSpec::uniform(2, 3, 3);
    spec.acc_shift = {shift, shift};
    const QuantizedMlp engine = QuantizedMlp::from_float(model, spec);
    const DenseReferenceModel reference(engine);
    const std::int64_t xmax = (1 << 3) - 1;
    for (std::int64_t a = 0; a <= xmax; ++a) {
      for (std::int64_t b = 0; b <= xmax; ++b) {
        const std::vector<std::int64_t> xq = {a, b};
        ASSERT_EQ(engine.forward(xq), reference.forward(xq))
            << "shift " << shift << " input (" << a << ", " << b << ")";
      }
    }
  }
}

TEST(InferGolden, CsrAccessorsRoundTripTheDenseLayout) {
  const Mlp model = random_model({5, 4, 3}, 55, 0.3);
  const QuantizedMlp q =
      QuantizedMlp::from_float(model, QuantSpec::uniform(2, 4, 4));
  for (const auto& layer : q.layers()) {
    const auto dense = layer.dense_weights();
    std::size_t nnz = 0;
    for (std::size_t r = 0; r < layer.out_features(); ++r) {
      for (std::size_t c = 0; c < layer.in_features(); ++c) {
        ASSERT_EQ(layer.weight(r, c), dense[r][c]);
        nnz += dense[r][c] != 0 ? 1 : 0;
      }
    }
    ASSERT_EQ(layer.nonzeros(), nnz);
    // Stored entries carry consistent magnitude/sign/signed-code forms.
    for (std::size_t k = 0; k < layer.nonzeros(); ++k) {
      ASSERT_GT(layer.w_mag[k], 0);
      ASSERT_EQ(layer.code(k), layer.w_val[k]);
      ASSERT_EQ(layer.w_val[k], layer.w_neg[k] ? -layer.w_mag[k] : layer.w_mag[k]);
    }
  }
}

TEST(InferGolden, QuantizedDatasetMatchesPerSampleQuantization) {
  Dataset data = make_named_dataset("redwine", 5);
  MinMaxScaler scaler;
  scaler.fit(data);
  data = scaler.transform(data);
  for (int input_bits : {1, 4, 9}) {
    const QuantizedDataset qdata = quantize_dataset(data, input_bits);
    EXPECT_EQ(qdata.size(), data.size());
    EXPECT_EQ(qdata.n_features, data.n_features());
    EXPECT_EQ(qdata.n_classes, data.n_classes);
    EXPECT_EQ(qdata.input_bits, input_bits);
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto expected = quantize_input(data.x[i], input_bits);
      const auto row = qdata.sample(i);
      ASSERT_EQ(std::vector<std::int64_t>(row.begin(), row.end()), expected)
          << "sample " << i;
      ASSERT_EQ(qdata.y[i], data.y[i]);
    }
  }
}

TEST(InferGolden, AccuracyRejectsMismatchedQuantization) {
  Dataset data = make_named_dataset("seeds", 3);
  MinMaxScaler scaler;
  scaler.fit(data);
  data = scaler.transform(data);
  const Mlp model = random_model({data.n_features(), 4, data.n_classes}, 8, 0.2);
  const QuantizedMlp q =
      QuantizedMlp::from_float(model, QuantSpec::uniform(2, 4, /*input_bits=*/4));
  const QuantizedDataset wrong = quantize_dataset(data, /*input_bits=*/6);
  EXPECT_THROW((void)q.accuracy(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace pnm
