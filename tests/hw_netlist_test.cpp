/// Tests for the netlist fabric: folding rules, structural hashing,
/// simulation semantics, and the physical analyses.

#include "pnm/hw/netlist.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace pnm::hw {
namespace {

TEST(Netlist, ConstantsPreexist) {
  Netlist nl;
  EXPECT_EQ(nl.constant(false), kConst0);
  EXPECT_EQ(nl.constant(true), kConst1);
  EXPECT_EQ(nl.gate_count(), 0U);
}

TEST(Netlist, InputsAreNamedAndOrdered) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  EXPECT_NE(a, b);
  ASSERT_EQ(nl.inputs().size(), 2U);
  EXPECT_EQ(nl.inputs()[0].name, "a");
  EXPECT_EQ(nl.inputs()[1].net, b);
}

TEST(Netlist, InputBusNamesBits) {
  Netlist nl;
  const auto bus = nl.add_input_bus("x", 3);
  ASSERT_EQ(bus.size(), 3U);
  EXPECT_EQ(nl.inputs()[0].name, "x[0]");
  EXPECT_EQ(nl.inputs()[2].name, "x[2]");
}

TEST(NetlistFolding, ConstantAbsorption) {
  Netlist nl;
  const NetId x = nl.add_input("x");
  EXPECT_EQ(nl.add_gate(GateType::kAnd2, x, kConst0), kConst0);
  EXPECT_EQ(nl.add_gate(GateType::kAnd2, x, kConst1), x);
  EXPECT_EQ(nl.add_gate(GateType::kOr2, x, kConst1), kConst1);
  EXPECT_EQ(nl.add_gate(GateType::kOr2, x, kConst0), x);
  EXPECT_EQ(nl.add_gate(GateType::kXor2, x, kConst0), x);
  EXPECT_EQ(nl.add_gate(GateType::kNand2, x, kConst0), kConst1);
  EXPECT_EQ(nl.add_gate(GateType::kNor2, x, kConst1), kConst0);
  EXPECT_EQ(nl.add_gate(GateType::kXnor2, x, kConst1), x);
  EXPECT_EQ(nl.gate_count(), 0U);  // all folded, no hardware
}

TEST(NetlistFolding, ConstantsFoldToInverters) {
  Netlist nl;
  const NetId x = nl.add_input("x");
  const NetId nx = nl.add_gate(GateType::kXor2, x, kConst1);
  EXPECT_EQ(nl.gate_count(), 1U);  // one INV
  EXPECT_EQ(nl.gates()[0].type, GateType::kInv);
  // All four "inverting" const cases share the same inverter.
  EXPECT_EQ(nl.add_gate(GateType::kNand2, x, kConst1), nx);
  EXPECT_EQ(nl.add_gate(GateType::kNor2, x, kConst0), nx);
  EXPECT_EQ(nl.add_gate(GateType::kXnor2, x, kConst0), nx);
  EXPECT_EQ(nl.gate_count(), 1U);
}

TEST(NetlistFolding, IdempotenceAndSelfAnnihilation) {
  Netlist nl;
  const NetId x = nl.add_input("x");
  EXPECT_EQ(nl.add_gate(GateType::kAnd2, x, x), x);
  EXPECT_EQ(nl.add_gate(GateType::kOr2, x, x), x);
  EXPECT_EQ(nl.add_gate(GateType::kXor2, x, x), kConst0);
  EXPECT_EQ(nl.add_gate(GateType::kXnor2, x, x), kConst1);
  EXPECT_EQ(nl.gate_count(), 0U);
  const NetId nx = nl.add_gate(GateType::kNand2, x, x);
  EXPECT_EQ(nl.gates()[0].type, GateType::kInv);
  EXPECT_EQ(nl.add_gate(GateType::kNor2, x, x), nx);
  EXPECT_EQ(nl.gate_count(), 1U);
}

TEST(NetlistFolding, DoubleInverterCancels) {
  Netlist nl;
  const NetId x = nl.add_input("x");
  const NetId nx = nl.add_gate(GateType::kInv, x);
  const NetId nnx = nl.add_gate(GateType::kInv, nx);
  EXPECT_EQ(nnx, x);
  EXPECT_EQ(nl.gate_count(), 1U);
}

TEST(NetlistFolding, ComplementaryOperandRules) {
  Netlist nl;
  const NetId x = nl.add_input("x");
  const NetId nx = nl.add_gate(GateType::kInv, x);
  EXPECT_EQ(nl.add_gate(GateType::kAnd2, x, nx), kConst0);
  EXPECT_EQ(nl.add_gate(GateType::kOr2, x, nx), kConst1);
  EXPECT_EQ(nl.add_gate(GateType::kXor2, x, nx), kConst1);
  EXPECT_EQ(nl.add_gate(GateType::kXnor2, x, nx), kConst0);
  EXPECT_EQ(nl.add_gate(GateType::kNand2, x, nx), kConst1);
  EXPECT_EQ(nl.add_gate(GateType::kNor2, x, nx), kConst0);
  EXPECT_EQ(nl.gate_count(), 1U);  // just the inverter
}

TEST(NetlistCse, IdenticalGatesShareOutput) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g1 = nl.add_gate(GateType::kAnd2, a, b);
  const NetId g2 = nl.add_gate(GateType::kAnd2, b, a);  // commuted
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(nl.gate_count(), 1U);
}

TEST(NetlistCse, ComplementaryCellBecomesInverter) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId and_out = nl.add_gate(GateType::kAnd2, a, b);
  const NetId nand_out = nl.add_gate(GateType::kNand2, a, b);
  // NAND built as INV(existing AND) rather than a fresh 2-input cell.
  EXPECT_EQ(nl.gate_count(), 2U);
  EXPECT_EQ(nl.gates()[1].type, GateType::kInv);
  EXPECT_EQ(nl.gates()[1].a, and_out);
  (void)nand_out;
}

TEST(NetlistCse, DisabledByConstructorFlag) {
  Netlist nl(/*enable_cse=*/false);
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId g1 = nl.add_gate(GateType::kAnd2, a, b);
  const NetId g2 = nl.add_gate(GateType::kAnd2, a, b);
  EXPECT_NE(g1, g2);
  EXPECT_EQ(nl.gate_count(), 2U);
  // Folding still works without CSE.
  EXPECT_EQ(nl.add_gate(GateType::kAnd2, a, kConst0), kConst0);
}

TEST(Netlist, BufFoldsToWire) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_EQ(nl.add_gate(GateType::kBuf, a), a);
  EXPECT_EQ(nl.gate_count(), 0U);
}

TEST(Netlist, RawGateBypassesOptimization) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId g = nl.add_gate_raw(GateType::kAnd2, a, kConst0);
  EXPECT_NE(g, kConst0);
  EXPECT_EQ(nl.gate_count(), 1U);
}

TEST(Netlist, RejectsUnknownNets) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::kAnd2, a, 999), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::kInv, a, a), std::invalid_argument);
  EXPECT_THROW(nl.mark_output(999, "y"), std::invalid_argument);
}

TEST(NetlistSim, TruthTablesOfAllCells) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  // Raw gates so nothing folds.
  const NetId and_o = nl.add_gate_raw(GateType::kAnd2, a, b);
  const NetId or_o = nl.add_gate_raw(GateType::kOr2, a, b);
  const NetId nand_o = nl.add_gate_raw(GateType::kNand2, a, b);
  const NetId nor_o = nl.add_gate_raw(GateType::kNor2, a, b);
  const NetId xor_o = nl.add_gate_raw(GateType::kXor2, a, b);
  const NetId xnor_o = nl.add_gate_raw(GateType::kXnor2, a, b);
  const NetId inv_o = nl.add_gate_raw(GateType::kInv, a);
  const NetId buf_o = nl.add_gate_raw(GateType::kBuf, a);
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      const auto s = nl.simulate({static_cast<std::uint8_t>(av),
                                  static_cast<std::uint8_t>(bv)});
      EXPECT_EQ(s[static_cast<std::size_t>(and_o)], av & bv);
      EXPECT_EQ(s[static_cast<std::size_t>(or_o)], av | bv);
      EXPECT_EQ(s[static_cast<std::size_t>(nand_o)], 1 - (av & bv));
      EXPECT_EQ(s[static_cast<std::size_t>(nor_o)], 1 - (av | bv));
      EXPECT_EQ(s[static_cast<std::size_t>(xor_o)], av ^ bv);
      EXPECT_EQ(s[static_cast<std::size_t>(xnor_o)], 1 - (av ^ bv));
      EXPECT_EQ(s[static_cast<std::size_t>(inv_o)], 1 - av);
      EXPECT_EQ(s[static_cast<std::size_t>(buf_o)], av);
      EXPECT_EQ(s[kConst0], 0);
      EXPECT_EQ(s[kConst1], 1);
    }
  }
}

TEST(NetlistSim, EvaluateOutputsFollowsPortOrder) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId na = nl.add_gate(GateType::kInv, a);
  nl.mark_output(na, "not_a");
  nl.mark_output(a, "a_copy");
  const auto out = nl.evaluate_outputs({1});
  ASSERT_EQ(out.size(), 2U);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
}

TEST(NetlistSim, WrongInputCountThrows) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.simulate({}), std::invalid_argument);
  EXPECT_THROW(nl.simulate({1, 0}), std::invalid_argument);
}

TEST(NetlistAnalysis, AreaPowerAreSums) {
  const auto& tech = TechLibrary::egt();
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.add_gate_raw(GateType::kAnd2, a, b);
  nl.add_gate_raw(GateType::kXor2, a, b);
  nl.add_gate_raw(GateType::kInv, a);
  const double expected_area = tech.cell(GateType::kAnd2).area_mm2 +
                               tech.cell(GateType::kXor2).area_mm2 +
                               tech.cell(GateType::kInv).area_mm2;
  EXPECT_DOUBLE_EQ(nl.area_mm2(tech), expected_area);
  const double expected_power = tech.cell(GateType::kAnd2).power_uw +
                                tech.cell(GateType::kXor2).power_uw +
                                tech.cell(GateType::kInv).power_uw;
  EXPECT_DOUBLE_EQ(nl.power_uw(tech), expected_power);
}

TEST(NetlistAnalysis, CriticalPathIsLongestChain) {
  const auto& tech = TechLibrary::egt();
  Netlist nl;
  const NetId a = nl.add_input("a");
  // Chain of 4 raw inverters vs a single parallel AND.
  NetId cur = a;
  for (int i = 0; i < 4; ++i) cur = nl.add_gate_raw(GateType::kInv, cur);
  nl.add_gate_raw(GateType::kAnd2, a, a);
  const double inv_d = tech.cell(GateType::kInv).delay_ms;
  EXPECT_DOUBLE_EQ(nl.critical_path_ms(tech), 4.0 * inv_d);
}

TEST(NetlistAnalysis, GateHistogramCounts) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.add_gate_raw(GateType::kAnd2, a, b);
  nl.add_gate_raw(GateType::kAnd2, a, b);
  nl.add_gate_raw(GateType::kInv, a);
  const auto hist = nl.gate_histogram();
  EXPECT_EQ(hist[static_cast<std::size_t>(GateType::kAnd2)], 2U);
  EXPECT_EQ(hist[static_cast<std::size_t>(GateType::kInv)], 1U);
  EXPECT_EQ(hist[static_cast<std::size_t>(GateType::kXor2)], 0U);
}

TEST(Tech, EgtLibraryIsSelfConsistent) {
  const auto& tech = TechLibrary::egt();
  EXPECT_EQ(tech.name(), "EGT");
  for (int t = 0; t < kGateTypeCount; ++t) {
    const auto& cell = tech.cell(static_cast<GateType>(t));
    EXPECT_GT(cell.area_mm2, 0.0);
    EXPECT_GT(cell.power_uw, 0.0);
    EXPECT_GT(cell.delay_ms, 0.0);
  }
  // XOR is the most expensive combinational cell in printed logic.
  EXPECT_GT(tech.cell(GateType::kXor2).area_mm2, tech.cell(GateType::kAnd2).area_mm2);
  EXPECT_GT(tech.cell(GateType::kAnd2).area_mm2, tech.cell(GateType::kInv).area_mm2);
  EXPECT_GT(tech.full_adder_area_mm2(), 2.0 * tech.cell(GateType::kXor2).area_mm2);
}

TEST(Tech, GateTypeNamesAreUnique) {
  std::set<std::string> names;
  for (int t = 0; t < kGateTypeCount; ++t) {
    names.insert(gate_type_name(static_cast<GateType>(t)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kGateTypeCount));
}

}  // namespace
}  // namespace pnm::hw
