/// \file quickstart.cpp
/// \brief 60-second tour of the pnm library.
///
/// Trains a small MLP on the Seeds task, quantizes it to 4-bit weights,
/// generates the bespoke printed circuit, cross-checks the gate-level
/// simulation against the integer golden model, and prints the
/// synthesis-style report.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "pnm/core/flow.hpp"
#include "pnm/core/quantize.hpp"
#include "pnm/hw/report.hpp"
#include "pnm/util/table.hpp"

int main() {
  using namespace pnm;

  // 1. Train the float baseline on the Seeds analog dataset.
  FlowConfig config;
  config.dataset_name = "seeds";
  config.seed = 42;
  MinimizationFlow flow(config);
  flow.prepare();
  std::cout << "dataset          : " << config.dataset_name << " ("
            << flow.data().train.size() << " train / " << flow.data().test.size()
            << " test samples)\n";
  std::cout << "float accuracy   : " << format_fixed(flow.float_test_accuracy(), 3)
            << '\n';
  std::cout << "baseline (8b)    : acc " << format_fixed(flow.baseline().accuracy, 3)
            << ", area " << format_fixed(flow.baseline().area_mm2, 1) << " mm^2\n\n";

  // 2. Quantize to 4-bit weights (with QAT fine-tuning) and build the
  //    bespoke circuit.
  Genome genome;
  genome.weight_bits.assign(flow.float_model().layer_count(), 4);
  genome.sparsity_pct.assign(flow.float_model().layer_count(), 0);
  genome.clusters.assign(flow.float_model().layer_count(), 0);
  const QuantizedMlp qmodel = flow.realize_genome(genome, /*finetune_epochs=*/8);
  const hw::BespokeCircuit circuit(qmodel);

  // 3. Bit-exact cross-check: gate-level simulation vs integer model.
  std::size_t checked = 0;
  std::size_t mismatches = 0;
  const auto& test = flow.data().test;
  const std::size_t n_check = std::min<std::size_t>(test.size(), 50);
  for (std::size_t i = 0; i < n_check; ++i) {
    const auto xq = quantize_input(test.x[i], qmodel.input_bits());
    if (circuit.predict(xq) != qmodel.predict_quantized(xq)) ++mismatches;
    ++checked;
  }
  std::cout << "gate-level vs golden model: " << (checked - mismatches) << "/" << checked
            << " predictions identical\n\n";
  if (mismatches != 0) {
    std::cerr << "ERROR: circuit does not match the integer model\n";
    return EXIT_FAILURE;
  }

  // 4. Synthesis-style report.
  const auto report = hw::analyze(circuit.netlist(), flow.tech());
  std::cout << "---- bespoke 4-bit Seeds classifier ----\n"
            << hw::to_string(report) << '\n'
            << hw::to_string(circuit.stage_areas(flow.tech()));
  std::cout << "\n4-bit accuracy   : " << format_fixed(qmodel.accuracy(test), 3)
            << "  (area " << format_fixed(report.area_mm2 / flow.baseline().area_mm2, 3)
            << "x of baseline)\n";
  return EXIT_SUCCESS;
}
