/// \file explore_minimization.cpp
/// \brief Design-space exploration on one of the paper's datasets — a
///        miniature, interactive version of Figure 1.
///
/// Usage:  explore_minimization [whitewine|redwine|pendigits|seeds] [seed]
///
/// Trains the float baseline, runs the three standalone minimization
/// sweeps, and prints the normalized accuracy/area series plus the Pareto
/// fronts, exactly like the paper's axes.

#include <cstdlib>
#include <iostream>
#include <string>

#include "pnm/core/flow.hpp"
#include "pnm/core/pareto.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/util/table.hpp"

namespace {

void print_sweep(const std::string& name, const std::vector<pnm::DesignPoint>& points,
                 const pnm::DesignPoint& baseline) {
  std::cout << "== " << name << " ==\n";
  pnm::TextTable table({"config", "accuracy", "acc delta", "norm area", "gain"});
  for (const auto& p : points) {
    table.add_row({p.config, pnm::format_fixed(p.accuracy, 3),
                   pnm::format_fixed(p.accuracy - baseline.accuracy, 3),
                   pnm::format_fixed(p.area_mm2 / baseline.area_mm2, 3),
                   pnm::format_factor(baseline.area_mm2 / p.area_mm2)});
  }
  std::cout << table.to_string() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "redwine";
  const auto& known = pnm::paper_dataset_names();
  if (std::find(known.begin(), known.end(), dataset) == known.end()) {
    std::cerr << "unknown dataset '" << dataset << "'; choose one of:";
    for (const auto& n : known) std::cerr << ' ' << n;
    std::cerr << '\n';
    return EXIT_FAILURE;
  }

  pnm::FlowConfig config;
  config.dataset_name = dataset;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  config.train.epochs = 60;
  config.finetune_epochs = 8;

  std::cout << "exploring minimization on '" << dataset << "' (seed " << config.seed
            << ")\n\n";
  pnm::MinimizationFlow flow(config);
  flow.prepare();
  const auto& baseline = flow.baseline();
  std::cout << "baseline: accuracy " << pnm::format_fixed(baseline.accuracy, 3)
            << ", area " << pnm::format_fixed(baseline.area_mm2 / 100.0, 2) << " cm^2\n\n";

  const auto quant = flow.sweep_quantization(2, 7);
  const auto prune = flow.sweep_pruning();
  const auto cluster = flow.sweep_clustering();
  print_sweep("quantization (QAT, 2-7 bits)", quant, baseline);
  print_sweep("unstructured pruning (20-60%)", prune, baseline);
  print_sweep("weight clustering (Deep-Compression codebook)", cluster, baseline);

  // Merge everything and show the overall standalone Pareto front.
  std::vector<pnm::DesignPoint> all = quant;
  all.insert(all.end(), prune.begin(), prune.end());
  all.insert(all.end(), cluster.begin(), cluster.end());
  const auto front = pnm::pareto_front(all);
  std::cout << "== overall standalone pareto front ==\n";
  pnm::TextTable table({"technique", "config", "accuracy", "norm area"});
  for (const auto& p : front) {
    table.add_row({p.technique, p.config, pnm::format_fixed(p.accuracy, 3),
                   pnm::format_fixed(p.area_mm2 / baseline.area_mm2, 3)});
  }
  std::cout << table.to_string();
  const auto best_gain =
      pnm::best_area_gain_at_loss(all, baseline.accuracy, baseline.area_mm2, 0.05);
  std::cout << "\nbest area gain at <=5% accuracy loss: "
            << (best_gain ? pnm::format_factor(*best_gain)
                          : std::string("n/a (no design within the loss budget)"))
            << '\n';
  return EXIT_SUCCESS;
}
