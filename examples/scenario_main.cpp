/// \file scenario_main.cpp
/// \brief CLI driver for scenario-matrix campaigns (pnm/core/scenario.hpp):
///        a grid spec file in, the gated report artifacts out, with the
///        same cross-process scheduling modes as campaign_main.
///
/// Usage:
///   scenario_main --spec FILE [--store DIR] [--threads N] [--out PREFIX]
///                 [--require-warm]
///                 [--worker] [--shard-id K --num-shards N] [--jobs N]
///                 [--collect]
///
/// The grid itself (datasets, topologies, input bits, tech nodes, seeds,
/// drifts, GA knobs, fidelity gate) lives entirely in the spec file — see
/// parse_scenario_spec() in pnm/core/scenario.hpp for the format.  The
/// flags only choose *how* the grid is executed:
///
///   (default)    run every cell in this process, write the artifacts.
///   --worker     one work-queue pass: flock-claim available cells under
///                DIR/sclaims, run them, publish DIR/scells/<id>.scell,
///                exit.  Run N concurrently to drain one grid together.
///   --shard-id K --num-shards N
///                restrict a --worker pass to cells where index % N == K.
///   --jobs N     supervisor: fork N local --worker subprocesses, wait,
///                sweep up any orphaned cell, then collect and write the
///                artifacts.
///   --collect    only merge DIR/scells/* into the artifacts (fails if
///                any cell is missing or stale).
///
/// Report artifacts (default, --jobs, and --collect modes):
///
///   PREFIX.grid.json   — axes + fronts + fidelity + drift records per
///                        cell, deterministic bytes (same spec => same
///                        file, serial or any worker topology; CI cmp's)
///   PREFIX.drift.tsv   — the drift-robustness report, one line per
///                        (cell, drift, genome); same determinism contract
///   PREFIX.report.json — grid plus cache/timing statistics
///   PREFIX.md          — human-readable markdown summary (also printed)
///
/// --require-warm asserts the resume guarantee: nonzero exit unless every
/// evaluation was served from the stores (zero misses, nonzero hits).

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "pnm/core/scenario.hpp"
#include "pnm/util/fileio.hpp"

namespace {

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --spec FILE [--store DIR] [--threads N] [--out PREFIX]\n"
               "       [--require-warm] [--worker] [--shard-id K --num-shards N]\n"
               "       [--jobs N] [--collect]\n";
}

int write_reports(const pnm::ScenarioResult& result, const std::string& out_prefix,
                  bool require_warm) {
  std::cout << result.report_markdown() << '\n';
  const std::string grid_path = out_prefix + ".grid.json";
  const std::string drift_path = out_prefix + ".drift.tsv";
  const std::string report_path = out_prefix + ".report.json";
  const std::string md_path = out_prefix + ".md";
  bool wrote = pnm::write_text_file_atomic(grid_path, result.grid_json());
  wrote = pnm::write_text_file_atomic(drift_path, result.drift_report()) && wrote;
  wrote = pnm::write_text_file_atomic(report_path, result.report_json()) && wrote;
  wrote = pnm::write_text_file_atomic(md_path, result.report_markdown()) && wrote;
  if (!wrote) {
    std::cerr << "error: failed writing report files under prefix " << out_prefix
              << '\n';
    return EXIT_FAILURE;
  }
  std::cout << "wrote " << grid_path << ", " << drift_path << ", " << report_path
            << ", " << md_path << '\n';

  if (require_warm) {
    if (result.total_cache_misses() != 0 || result.total_cache_hits() == 0) {
      std::cerr << "--require-warm: expected a fully warm scenario run, got "
                << result.total_cache_hits() << " hits / "
                << result.total_cache_misses() << " misses\n";
      return EXIT_FAILURE;
    }
    std::cout << "warm-run check passed: every evaluation served from the store ("
              << result.total_cache_hits() << " hits, 0 misses)\n";
  }
  return EXIT_SUCCESS;
}

void print_worker_summary(const char* who, const pnm::CampaignWorkerResult& w) {
  std::cout << who << ": ran " << w.cells_run << " cell(s), skipped "
            << w.cells_skipped_done << " done / " << w.cells_skipped_claimed
            << " claimed by live workers / " << w.cells_skipped_other_shard
            << " other-shard, in " << w.seconds << " s\n";
}

/// One worker pass in this process (used by --worker and by each forked
/// --jobs child).  Catches everything: a forked child must report and
/// _exit, never unwind through main via std::terminate.
int run_worker_pass(pnm::ScenarioSpec spec, std::size_t shard_id,
                    std::size_t num_shards, const char* who) {
  try {
    pnm::ScenarioRunner runner(std::move(spec));
    print_worker_summary(who, runner.run_worker(shard_id, num_shards));
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << who << ": error: " << e.what() << '\n';
    return EXIT_FAILURE;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pnm;

  std::string spec_path;
  std::string store_dir;
  std::string out_prefix = "scenario";
  std::size_t threads = 0;
  bool require_warm = false;
  bool worker = false;
  bool collect_only = false;
  std::size_t shard_id = 0;
  std::size_t num_shards = 1;
  std::size_t jobs = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    const bool has_value = i + 1 < argc;
    if (arg == "--spec" && has_value) {
      spec_path = argv[++i];
    } else if (arg == "--store" && has_value) {
      store_dir = argv[++i];
    } else if (arg == "--threads" && has_value) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--out" && has_value) {
      out_prefix = argv[++i];
    } else if (arg == "--require-warm") {
      require_warm = true;
    } else if (arg == "--worker") {
      worker = true;
    } else if (arg == "--collect") {
      collect_only = true;
    } else if (arg == "--shard-id" && has_value) {
      shard_id = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--num-shards" && has_value) {
      num_shards = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--jobs" && has_value) {
      jobs = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      usage(argv[0]);
      return EXIT_FAILURE;
    }
  }

  if (spec_path.empty()) {
    usage(argv[0]);
    return EXIT_FAILURE;
  }
  const std::optional<std::string> spec_text = read_text_file(spec_path);
  if (!spec_text) {
    std::cerr << "error: cannot read spec file " << spec_path << '\n';
    return EXIT_FAILURE;
  }
  ScenarioSpec spec;
  try {
    spec = parse_scenario_spec(*spec_text);
  } catch (const std::exception& e) {
    std::cerr << "error: " << spec_path << ": " << e.what() << '\n';
    return EXIT_FAILURE;
  }
  spec.store_dir = store_dir;
  spec.threads = threads;

  const bool scheduling = worker || collect_only || jobs > 0;
  if (scheduling && spec.store_dir.empty()) {
    std::cerr << "error: --worker/--jobs/--collect need --store DIR (claims and "
                 "cell results live there)\n";
    return EXIT_FAILURE;
  }
  if ((worker && (collect_only || jobs > 0)) || (collect_only && jobs > 0)) {
    std::cerr << "error: --worker, --jobs, and --collect are mutually exclusive\n";
    return EXIT_FAILURE;
  }

  if (worker) {
    // Distinct preferred store segments per shard: purely an optimization
    // (the store probes past held segments anyway).
    spec.writer_id = shard_id;
    return run_worker_pass(std::move(spec), shard_id, num_shards, "worker");
  }

  if (collect_only) {
    const std::optional<ScenarioResult> result = collect_scenario(spec);
    if (!result) {
      std::cerr << "error: scenario incomplete — missing or stale cell results "
                   "under "
                << spec.store_dir << "/scells (run more workers, then collect "
                << "again)\n";
      return EXIT_FAILURE;
    }
    return write_reports(*result, out_prefix, require_warm);
  }

  if (jobs > 0) {
    // Supervisor: fork the workers *before* any ScenarioRunner exists in
    // this process (so no thread pool crosses a fork), wait for them,
    // sweep up anything a crashed worker orphaned, then collect.
    std::cout << "supervisor: spawning " << jobs << " worker process(es)\n";
    std::fflush(nullptr);
    std::vector<pid_t> children;
    for (std::size_t j = 0; j < jobs; ++j) {
      const pid_t pid = fork();
      if (pid < 0) {
        std::perror("fork");
        return EXIT_FAILURE;
      }
      if (pid == 0) {
        ScenarioSpec child_spec = spec;
        child_spec.writer_id = j;  // preferred segment only; probing is safe
        const int status = run_worker_pass(
            std::move(child_spec), /*shard_id=*/0, /*num_shards=*/1, "worker");
        std::fflush(nullptr);
        _exit(status);
      }
      children.push_back(pid);
    }
    bool worker_failed = false;
    for (pid_t pid : children) {
      int status = 0;
      if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
          WEXITSTATUS(status) != EXIT_SUCCESS) {
        worker_failed = true;
      }
    }
    if (worker_failed) {
      std::cerr << "supervisor: a worker exited abnormally — sweeping up its "
                   "cells locally\n";
    }
    std::optional<ScenarioResult> result = collect_scenario(spec);
    if (!result) {
      // A worker died mid-cell; its claim evaporated with it, so one
      // local pass finishes the stragglers.
      ScenarioRunner sweeper(spec);
      print_worker_summary("supervisor-sweep", sweeper.run_worker());
      result = collect_scenario(spec);
    }
    if (!result) {
      std::cerr << "error: scenario still incomplete after the sweep pass\n";
      return EXIT_FAILURE;
    }
    return write_reports(*result, out_prefix, require_warm);
  }

  // Default: the whole grid in this process.
  ScenarioRunner runner(std::move(spec));
  std::cout << "scenario: " << runner.spec().expand().size() << " cell(s) ("
            << runner.spec().datasets.size() << " dataset(s) x "
            << runner.spec().topologies.size() << " topology(ies) x "
            << runner.spec().input_bits.size() << " bit width(s) x "
            << runner.spec().tech_nodes.size() << " tech node(s) x "
            << runner.spec().seeds.size() << " seed(s)), pop "
            << runner.spec().ga.population << ", " << runner.spec().ga.generations
            << " gens, " << runner.threads() << " shared worker thread(s)"
            << (runner.spec().store_dir.empty()
                    ? ", no persistence"
                    : ", store dir " + runner.spec().store_dir)
            << "\n\n";
  const ScenarioResult result = runner.run();
  return write_reports(result, out_prefix, require_warm);
}
