/// \file ga_search.cpp
/// \brief Hardware-aware GA search (the paper's Figure-2 engine) plus
///        export of the winning design to structural Verilog.
///
/// Usage:  ga_search [dataset] [population] [generations] [out.v]
///
/// Runs NSGA-II over per-layer {weight bits, sparsity, clusters}, prints
/// the Pareto front, selects the design with the best area among those
/// within 2% of the front's peak accuracy, cross-checks its gate-level
/// netlist against the integer golden model, and writes the Verilog.

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "pnm/core/flow.hpp"
#include "pnm/core/quantize.hpp"
#include "pnm/hw/report.hpp"
#include "pnm/hw/verilog.hpp"
#include "pnm/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pnm;
  const std::string dataset = argc > 1 ? argv[1] : "seeds";
  GaConfig ga;
  ga.population = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 24;
  ga.generations = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 12;
  const std::string out_path = argc > 4 ? argv[4] : "pnm_best_design.v";

  FlowConfig config;
  config.dataset_name = dataset;
  config.train.epochs = 60;
  config.finetune_epochs = 8;
  MinimizationFlow flow(config);
  flow.prepare();
  const auto& baseline = flow.baseline();
  std::cout << "baseline: acc " << format_fixed(baseline.accuracy, 3) << ", area "
            << format_fixed(baseline.area_mm2, 1) << " mm^2\n";

  // Fitness backend: proxy pipeline, fanned across all cores —
  // bit-identical to a serial run (see pnm/core/eval.hpp).
  auto proxy = flow.proxy_evaluator(/*finetune_epochs=*/2);
  ParallelEvaluator fitness(proxy);
  std::cout << "running NSGA-II (pop " << ga.population << ", " << ga.generations
            << " gens, fitness " << fitness.name() << ")...\n";
  const auto outcome = flow.run_ga(fitness, ga);
  std::cout << "evaluated " << outcome.raw.evaluations << " distinct designs\n\n";

  TextTable table({"genome", "accuracy", "norm area", "gain"});
  for (const auto& p : outcome.front) {
    table.add_row({p.config, format_fixed(p.accuracy, 3),
                   format_fixed(p.area_mm2 / baseline.area_mm2, 3),
                   format_factor(baseline.area_mm2 / p.area_mm2)});
  }
  std::cout << table.to_string() << '\n';
  if (outcome.front.empty()) {
    std::cerr << "GA produced no designs\n";
    return EXIT_FAILURE;
  }

  // Pick the smallest design within 2% of the front's best accuracy.
  double best_acc = 0.0;
  for (const auto& p : outcome.front) best_acc = std::max(best_acc, p.accuracy);
  const DesignPoint* chosen = nullptr;
  for (const auto& p : outcome.front) {
    if (p.accuracy >= best_acc - 0.02 && (!chosen || p.area_mm2 < chosen->area_mm2)) {
      chosen = &p;
    }
  }
  std::cout << "selected design: " << chosen->config << " (acc "
            << format_fixed(chosen->accuracy, 3) << ", gain "
            << format_factor(baseline.area_mm2 / chosen->area_mm2) << ")\n";

  // Rebuild the genome from the front entry (it is stored in raw form too).
  const auto* member = &outcome.raw.front.front();
  for (const auto& m : outcome.raw.front) {
    if (m.genome.key() == chosen->config) member = &m;
  }
  const QuantizedMlp qmodel = flow.realize_genome(member->genome, config.finetune_epochs);
  const hw::BespokeCircuit circuit(qmodel);

  // Gate-level sanity check before shipping the RTL.
  std::size_t mismatches = 0;
  const auto& test = flow.data().test;
  for (std::size_t i = 0; i < std::min<std::size_t>(test.size(), 100); ++i) {
    const auto xq = quantize_input(test.x[i], qmodel.input_bits());
    if (circuit.predict(xq) != qmodel.predict_quantized(xq)) ++mismatches;
  }
  std::cout << "netlist vs golden model on 100 test vectors: "
            << (mismatches == 0 ? "bit-exact" : "MISMATCH") << '\n';
  if (mismatches != 0) return EXIT_FAILURE;

  std::ofstream out(out_path);
  hw::write_verilog(circuit.netlist(), out, "pnm_" + dataset + "_classifier");
  std::cout << "wrote " << out_path << " (" << circuit.netlist().gate_count()
            << " gates)\n"
            << hw::to_string(hw::analyze(circuit.netlist(), flow.tech()));
  return EXIT_SUCCESS;
}
