/// serve_main — the inference-as-a-service CLI.
///
/// One binary, four roles (all speaking the serve wire protocol):
///
///   Train a deployable design (QAT at a fixed precision, saved as a
///   pnm-model v1 file):
///     serve_main --train-model pendigits --out model_a.pnm
///                [--weight-bits 5] [--input-bits 4] [--hidden 10]
///                [--train-epochs 30] [--seed 1]
///
///   Serve it (runs until SIGINT/SIGTERM; SIGHUP hot-swaps the file named
///   by --swap-file, or re-loads the default model when it is omitted).
///   --model repeats: a plain path is the default model, NAME=FILE
///   registers an additional named model (protocol-v2 clients route by
///   name).  --reactors N runs N SO_REUSEPORT accept+IO loops on the port:
///     serve_main --model model_a.pnm [--model beta=model_b.pnm]
///                --port 9000 [--reactors 2] [--batch-max 32]
///                [--batch-deadline-us 200] [--threads 2]
///                [--swap-file model_b.pnm | --swap-file beta=model_c.pnm]
///
///   Drive it open-loop (paced offered rate; with --verify every response
///   is checked bit-exactly against the offline prediction of the design
///   version that served it — nonzero exit on any violation).
///   --model-name NAME switches to protocol-v2 frames routed to that
///   model (swaps then target it too):
///     serve_main --loadgen --port 9000 --model model_a.pnm
///                [--model-name beta] [--rate 5000] [--requests 10000]
///                [--swap-at 2000=model_b.pnm] [--verify 2=model_b.pnm]
///
///   Poke a running server (--swap accepts NAME=FILE for named models):
///     serve_main --stats --port 9000
///     serve_main --swap model_b.pnm --port 9000
///     serve_main --swap beta=model_c.pnm --port 9000
///
/// The loadgen's --model names the design the *first* version serves: it
/// sizes the random [0,1] feature vectors and seeds the verify map with
/// version 1.  Later versions come from --verify entries.  Versions are
/// per model name, so a loadgen with --model-name verifies that model's
/// own sequence.
///
/// This binary links only the pnm_infer engine library — serving a design
/// needs none of the minimization stack.

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fcntl.h>
#include <iostream>
#include <map>
#include <poll.h>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "pnm/core/model_io.hpp"
#include "pnm/core/quantize.hpp"
#include "pnm/data/scaler.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/nn/trainer.hpp"
#include "pnm/serve/client.hpp"
#include "pnm/serve/server.hpp"
#include "pnm/util/rng.hpp"

namespace {

// Signal plumbing: the handler only sets sig_atomic_t flags and writes
// one byte to a self-pipe (both async-signal-safe) — no allocation, no
// locking, no iostream.  The serve loop blocks on the pipe's read end,
// so a SIGHUP swap happens immediately instead of on the next tick of a
// sleep poll, and the model load/logging all run in the main thread.
volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_hup = 0;
int g_wake_pipe[2] = {-1, -1};

void on_signal(int sig) {
  if (sig == SIGHUP) {
    g_hup = 1;
  } else {
    g_stop = 1;
  }
  const int saved_errno = errno;
  const unsigned char byte = 0;
  // A full pipe (EAGAIN) just means a wakeup is already pending.
  [[maybe_unused]] const ssize_t rc = write(g_wake_pipe[1], &byte, 1);
  errno = saved_errno;
}

bool install_signal_handlers() {
  if (pipe(g_wake_pipe) != 0) return false;
  for (const int fd : g_wake_pipe) {
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) return false;
  }
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;  // only the self-pipe interrupts the serve loop
  return sigaction(SIGINT, &sa, nullptr) == 0 &&
         sigaction(SIGTERM, &sa, nullptr) == 0 &&
         sigaction(SIGHUP, &sa, nullptr) == 0;
}

struct Args {
  std::map<std::string, std::string> values;
  std::vector<std::string> models;                                  // serve: every --model
  std::vector<std::pair<std::size_t, std::string>> swap_at;         // loadgen
  std::map<std::uint32_t, std::string> verify;                      // loadgen

  bool has(const std::string& key) const { return values.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  long num(const std::string& key, long fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stol(it->second);
  }
};

bool parse_args(int argc, char** argv, Args& args) {
  const std::vector<std::string> flags = {"--loadgen", "--stats"};
  const std::vector<std::string> with_value = {
      "--train-model", "--out",   "--weight-bits", "--input-bits",
      "--hidden",      "--seed",  "--train-epochs", "--model",
      "--model-name",  "--port",  "--batch-max", "--batch-deadline-us",
      "--threads",     "--reactors", "--swap-file", "--swap",
      "--rate",        "--requests"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (std::find(flags.begin(), flags.end(), arg) != flags.end()) {
      args.values[arg] = "1";
      continue;
    }
    const bool known =
        std::find(with_value.begin(), with_value.end(), arg) != with_value.end();
    if ((known || arg == "--swap-at" || arg == "--verify") && i + 1 < argc) {
      const std::string value = argv[++i];
      if (arg == "--swap-at" || arg == "--verify") {
        const auto eq = value.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
          std::cerr << "error: " << arg << " wants N=PATH, got '" << value << "'\n";
          return false;
        }
        const long n = std::stol(value.substr(0, eq));
        if (arg == "--swap-at") {
          args.swap_at.emplace_back(static_cast<std::size_t>(n), value.substr(eq + 1));
        } else {
          args.verify[static_cast<std::uint32_t>(n)] = value.substr(eq + 1);
        }
      } else {
        // --model repeats (serve mode registers every occurrence); the
        // first one also lands in `values` for the single-model modes.
        if (arg == "--model") args.models.push_back(value);
        if (arg != "--model" || !args.has("--model")) args.values[arg] = value;
      }
      continue;
    }
    std::cerr << "error: unknown or valueless argument '" << arg << "'\n";
    return false;
  }
  return true;
}

pnm::Dataset dataset_by_name(const std::string& name, std::uint64_t seed) {
  if (name == "whitewine") return pnm::make_whitewine(seed);
  if (name == "redwine") return pnm::make_redwine(seed);
  if (name == "pendigits") return pnm::make_pendigits(seed);
  if (name == "seeds") return pnm::make_seeds(seed);
  throw std::invalid_argument("unknown dataset '" + name +
                              "' (whitewine|redwine|pendigits|seeds)");
}

int run_train(const Args& args) {
  const std::string out = args.get("--out");
  if (out.empty()) {
    std::cerr << "error: --train-model needs --out PATH\n";
    return 1;
  }
  const std::uint64_t seed = static_cast<std::uint64_t>(args.num("--seed", 42));
  const int weight_bits = static_cast<int>(args.num("--weight-bits", 5));
  const int input_bits = static_cast<int>(args.num("--input-bits", 4));
  const std::size_t hidden = static_cast<std::size_t>(args.num("--hidden", 10));
  const std::size_t epochs = static_cast<std::size_t>(args.num("--train-epochs", 30));

  const std::string name = args.get("--train-model");
  pnm::Dataset data = dataset_by_name(name, 7000 + seed);
  pnm::Rng rng(seed);
  pnm::DataSplit split = pnm::stratified_split(data, 0.6, 0.2, 0.2, rng);
  pnm::MinMaxScaler scaler;
  pnm::scale_split(split, scaler);

  pnm::Mlp model({split.train.n_features(), hidden, data.n_classes}, rng);
  const pnm::QuantSpec spec = pnm::QuantSpec::uniform(2, weight_bits, input_bits);
  pnm::TrainConfig train;
  train.epochs = epochs;
  pnm::Trainer trainer(train);
  trainer.set_weight_view(pnm::make_qat_view(spec));
  trainer.fit(model, split.train, rng);

  const pnm::QuantizedMlp qmodel = pnm::QuantizedMlp::from_float(model, spec);
  const double acc = qmodel.accuracy(pnm::quantize_dataset(split.test, input_bits));
  if (!pnm::save_quantized_mlp(qmodel, out, name + "-" + std::to_string(weight_bits) + "b")) {
    std::cerr << "error: cannot write " << out << '\n';
    return 1;
  }
  std::cout << "trained " << name << ": " << split.train.n_features() << "->" << hidden
            << "->" << data.n_classes << ", " << weight_bits << "b weights, "
            << input_bits << "b inputs; test accuracy " << acc << "\nwrote " << out
            << '\n';
  return 0;
}

/// Splits a NAME=FILE CLI value; a plain path yields `fallback_name`.
/// (Only a '=' before any '/' counts as a name separator, so paths with
/// '=' in a directory component still work.)
std::pair<std::string, std::string> split_model_arg(const std::string& value,
                                                    const std::string& fallback_name) {
  const auto eq = value.find('=');
  if (eq != std::string::npos && eq > 0 && value.find('/') > eq) {
    return {value.substr(0, eq), value.substr(eq + 1)};
  }
  return {fallback_name, value};
}

int run_serve(const Args& args) {
  if (args.models.empty()) {
    std::cerr << "error: serve mode needs --model PATH (or --model NAME=FILE)\n";
    return 1;
  }
  pnm::serve::ServeConfig config;
  config.port = static_cast<std::uint16_t>(args.num("--port", 0));
  config.reactors = static_cast<std::size_t>(args.num("--reactors", 1));
  config.batch_max = static_cast<std::size_t>(args.num("--batch-max", 32));
  config.batch_deadline_us = args.num("--batch-deadline-us", 200);
  config.worker_threads = static_cast<std::size_t>(args.num("--threads", 2));

  auto registry = std::make_shared<pnm::serve::ModelRegistry>();
  for (const std::string& entry : args.models) {
    const auto [name, file] = split_model_arg(entry, "default");
    std::string error;
    if (!registry->register_model(name, {pnm::load_quantized_mlp(file), 0, file, {}},
                                  &error)) {
      std::cerr << "error: cannot register model '" << name << "': " << error << '\n';
      return 1;
    }
  }
  // SIGHUP target: NAME=FILE swaps that model; a plain path (or the
  // omitted default, the first --model's file) swaps the default model.
  const auto [swap_name, swap_file] = split_model_arg(
      args.get("--swap-file", split_model_arg(args.models.front(), "default").second),
      std::string());

  pnm::serve::Server server(config, registry);
  server.start();
  std::cout << "serving on port " << server.port() << " (" << config.reactors
            << " reactors, " << config.worker_threads << " workers, batch<="
            << config.batch_max << ", " << config.batch_deadline_us << "us deadline)\n";
  for (const pnm::serve::ModelStats& m : registry->stats()) {
    std::cout << "  model " << m.name << ": " << m.path << '\n';
  }
  std::cout << "SIGHUP swaps " << (swap_name.empty() ? "default" : swap_name) << " to "
            << swap_file << "; SIGINT/SIGTERM stops\n"
            << std::flush;

  if (!install_signal_handlers()) {
    std::cerr << "error: cannot install signal handlers\n";
    return 1;
  }
  while (g_stop == 0) {
    // Block until a signal pokes the self-pipe, then drain it: every
    // pending wakeup is coalesced into one pass over the flags.
    pollfd pfd{g_wake_pipe[0], POLLIN, 0};
    if (poll(&pfd, 1, -1) < 0 && errno != EINTR) break;
    unsigned char drain[64];
    while (read(g_wake_pipe[0], drain, sizeof(drain)) > 0) {
    }
    if (g_hup != 0) {
      g_hup = 0;
      std::string error;
      if (server.swap_model_named(swap_name, swap_file, &error)) {
        const auto live = registry->get(swap_name);
        std::cout << "swapped " << live->name << " to " << swap_file << " (version "
                  << live->version << ")\n"
                  << std::flush;
      } else {
        std::cout << "swap rejected: " << error << "\n" << std::flush;
      }
    }
  }
  const pnm::serve::MetricsSnapshot stats = server.stats();
  server.stop();
  std::cout << "served " << stats.responses_total << " responses in "
            << stats.batches_total << " batches (mean batch "
            << stats.mean_batch_size() << ", p50 " << stats.latency_percentile_us(50)
            << "us, p99 " << stats.latency_percentile_us(99) << "us)\n";
  return 0;
}

int run_loadgen(const Args& args) {
  const std::string model_path = args.get("--model");
  if (model_path.empty() || !args.has("--port")) {
    std::cerr << "error: --loadgen needs --model PATH and --port P\n";
    return 1;
  }
  const pnm::QuantizedMlp base = pnm::load_quantized_mlp(model_path);

  // Random [0,1] feature vectors: bit-exactness does not care whether the
  // inputs are realistic, only that client and offline agree on them.
  pnm::Rng rng(static_cast<std::uint64_t>(args.num("--seed", 42)));
  std::vector<std::vector<double>> samples(64);
  for (auto& s : samples) {
    s.resize(base.input_size());
    for (auto& v : s) v = rng.uniform();
  }

  // Keep the verify designs alive for the whole run.
  std::map<std::uint32_t, pnm::QuantizedMlp> designs;
  pnm::serve::LoadGenConfig load;
  load.port = static_cast<std::uint16_t>(args.num("--port", 0));
  load.rate = static_cast<double>(args.num("--rate", 2000));
  load.total_requests = static_cast<std::size_t>(args.num("--requests", 2000));
  load.model_name = args.get("--model-name");
  load.samples = &samples;
  for (const auto& [after, path] : args.swap_at) load.swaps[after] = path;
  if (!args.verify.empty() || !args.swap_at.empty()) {
    designs.emplace(1, base);
    for (const auto& [version, path] : args.verify) {
      designs.emplace(version, pnm::load_quantized_mlp(path));
    }
    for (const auto& [version, design] : designs) load.verify[version] = &design;
  }

  const pnm::serve::LoadGenReport report = pnm::serve::run_load(load);
  std::cout << "offered " << report.offered_rps << " rps, achieved "
            << report.achieved_rps << " rps over " << report.duration_s << "s\n"
            << "sent " << report.sent << ", received " << report.received
            << ", send failures " << report.send_failures << "\n"
            << "latency p50 " << report.p50_us << "us, p99 " << report.p99_us
            << "us, mean " << report.mean_us << "us\n";
  for (const auto& [version, count] : report.responses_by_version) {
    std::cout << "  version " << version << ": " << count << " responses\n";
  }
  if (!load.verify.empty()) {
    std::cout << "verification: " << report.mismatches << " mismatches, "
              << report.unknown_version << " unknown versions, "
              << report.swap_failures << " swap failures\n";
  }
  if (!report.ok()) {
    std::cerr << "FAIL: load run lost or mis-served responses\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}

int run_admin(const Args& args) {
  pnm::serve::ServeClient client;
  if (!client.connect("127.0.0.1", static_cast<std::uint16_t>(args.num("--port", 0)), 5)) {
    std::cerr << "error: cannot connect\n";
    return 1;
  }
  if (args.has("--stats")) {
    std::string json;
    if (!client.stats(json)) {
      std::cerr << "error: stats request failed\n";
      return 1;
    }
    std::cout << json;
    return 0;
  }
  std::string message;
  const auto [name, file] = split_model_arg(args.get("--swap"), std::string());
  const bool ok = name.empty() ? client.swap(file, message)
                               : client.swap_named(name, file, message);
  std::cout << (ok ? "swapped: " : "rejected: ") << message << '\n';
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return 2;
  try {
    if (args.has("--train-model")) return run_train(args);
    if (args.has("--loadgen")) return run_loadgen(args);
    if (args.has("--stats") || args.has("--swap")) return run_admin(args);
    return run_serve(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
