/// \file custom_dataset.cpp
/// \brief Using the library on your own data: CSV in, minimized printed
///        classifier out.
///
/// Usage:  custom_dataset [file.csv [delimiter]]
///
/// Without arguments the example writes a demonstration CSV first (a
/// synthetic 3-class task), then loads it through the same code path real
/// UCI files take (e.g. winequality-white.csv with ';'), trains, applies
/// a combined minimization recipe, and reports the bespoke circuit.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "pnm/core/flow.hpp"
#include "pnm/data/csv.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/hw/report.hpp"
#include "pnm/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pnm;

  std::string path;
  char delimiter = ',';
  if (argc > 1) {
    path = argv[1];
    if (argc > 2) delimiter = argv[2][0];
  } else {
    // Self-demo: synthesize a small sensor-classification task and dump
    // it to CSV so the load path below is exercised end to end.
    path = "pnm_demo_dataset.csv";
    SynthConfig cfg;
    cfg.name = "demo";
    cfg.n_features = 6;
    cfg.n_classes = 3;
    cfg.n_samples = 900;
    cfg.class_separation = 2.0;
    Rng rng(2024);
    const Dataset demo = make_synthetic(cfg, rng);
    std::ofstream out(path);
    out << "# synthetic demo dataset: 6 features, labels in the last column\n";
    save_csv(demo, out);
    std::cout << "wrote demo dataset to " << path << '\n';
  }

  std::cout << "loading " << path << " (delimiter '" << delimiter << "')\n";
  const CsvLoadResult loaded = load_csv_file(path, delimiter);
  std::cout << "samples: " << loaded.data.size() << ", features: "
            << loaded.data.n_features() << ", classes: " << loaded.data.n_classes
            << " (original labels:";
  for (long v : loaded.label_values) std::cout << ' ' << v;
  std::cout << ")\n\n";

  FlowConfig config;
  config.dataset_name = "custom";
  config.train.epochs = 60;
  config.finetune_epochs = 8;
  config.hidden = {static_cast<std::size_t>(
      std::max<std::size_t>(4, loaded.data.n_features() / 2))};
  MinimizationFlow flow(config, loaded.data);
  flow.prepare();
  std::cout << "float test accuracy: " << format_fixed(flow.float_test_accuracy(), 3)
            << '\n';
  std::cout << "8-bit bespoke baseline: " << format_fixed(flow.baseline().area_mm2, 1)
            << " mm^2 at accuracy " << format_fixed(flow.baseline().accuracy, 3)
            << "\n\n";

  // A sensible combined recipe: 4-bit weights, 30% sparsity, 4-value
  // codebook per layer (run ga_search for the automated version).
  Genome recipe;
  const std::size_t n_layers = flow.float_model().layer_count();
  recipe.weight_bits.assign(n_layers, 4);
  recipe.sparsity_pct.assign(n_layers, 30);
  recipe.clusters.assign(n_layers, 4);
  NetlistEvaluator exact =
      flow.netlist_evaluator(config.finetune_epochs, /*use_test_set=*/true);
  const DesignPoint minimized = exact.evaluate(recipe);

  TextTable table({"design", "accuracy", "area mm^2", "gain"});
  table.add_row({"baseline 8b", format_fixed(flow.baseline().accuracy, 3),
                 format_fixed(flow.baseline().area_mm2, 1), "1.00x"});
  table.add_row({"4b + 30% sparse + k=4", format_fixed(minimized.accuracy, 3),
                 format_fixed(minimized.area_mm2, 1),
                 format_factor(flow.baseline().area_mm2 / minimized.area_mm2)});
  std::cout << table.to_string();
  return EXIT_SUCCESS;
}
