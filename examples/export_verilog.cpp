/// \file export_verilog.cpp
/// \brief Full RTL hand-off: bespoke circuit -> structural Verilog plus a
///        self-checking testbench built from real test-set vectors.
///
/// Usage:  export_verilog [dataset] [weight_bits] [out_prefix]
///
/// This is the bridge from this library to a commercial flow (the paper's
/// Synopsys step): simulate <prefix>.v together with <prefix>_tb.v in any
/// Verilog simulator and it prints "PASS: all N vectors".

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "pnm/pnm.hpp"

int main(int argc, char** argv) {
  using namespace pnm;
  const std::string dataset = argc > 1 ? argv[1] : "seeds";
  const int bits = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string prefix = argc > 3 ? argv[3] : "pnm_" + dataset;

  FlowConfig config;
  config.dataset_name = dataset;
  config.train.epochs = 60;
  config.finetune_epochs = 8;
  MinimizationFlow flow(config);
  flow.prepare();

  Genome genome;
  const std::size_t n_layers = flow.float_model().layer_count();
  genome.weight_bits.assign(n_layers, bits);
  genome.sparsity_pct.assign(n_layers, 0);
  genome.clusters.assign(n_layers, 0);
  const QuantizedMlp qmodel = flow.realize_genome(genome, config.finetune_epochs);
  const hw::BespokeCircuit circuit(qmodel);

  std::cout << "design: " << dataset << " @ " << bits << "-bit weights, accuracy "
            << format_fixed(qmodel.accuracy(flow.data().test), 3) << "\n"
            << hw::to_string(hw::analyze(circuit.netlist(), flow.tech())) << '\n';

  // Test vectors: the first 50 test samples, labelled by the golden model
  // (the testbench checks RTL-vs-golden equivalence, not accuracy).
  std::vector<hw::TestVector> vectors;
  const auto& test = flow.data().test;
  for (std::size_t i = 0; i < std::min<std::size_t>(test.size(), 50); ++i) {
    hw::TestVector v;
    v.inputs = quantize_input(test.x[i], qmodel.input_bits());
    v.expected_class = qmodel.predict_quantized(v.inputs);
    // Cross-check with the gate-level simulator before exporting.
    if (circuit.predict(v.inputs) != v.expected_class) {
      std::cerr << "internal error: netlist/golden mismatch on vector " << i << '\n';
      return EXIT_FAILURE;
    }
    vectors.push_back(std::move(v));
  }

  const std::string module = "pnm_" + dataset + "_classifier";
  {
    std::ofstream rtl(prefix + ".v");
    hw::write_verilog(circuit.netlist(), rtl, module);
  }
  {
    std::ofstream tb(prefix + "_tb.v");
    hw::write_verilog_testbench(circuit, vectors, tb, module);
  }
  std::cout << "wrote " << prefix << ".v (" << circuit.netlist().gate_count()
            << " gates) and " << prefix << "_tb.v (" << vectors.size()
            << " self-checking vectors)\n"
            << "simulate with e.g.: iverilog " << prefix << ".v " << prefix
            << "_tb.v && ./a.out\n";
  return EXIT_SUCCESS;
}
