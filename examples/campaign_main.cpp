/// \file campaign_main.cpp
/// \brief CLI driver for multi-dataset GA campaigns (pnm/core/campaign.hpp),
///        including the cross-process scheduling modes.
///
/// Usage:
///   campaign_main [--datasets a,b,c] [--seeds 42,43] [--pop N] [--gens G]
///                 [--train-epochs E] [--finetune E] [--ga-finetune E]
///                 [--threads N] [--store DIR] [--out PREFIX] [--require-warm]
///                 [--worker] [--shard-id K --num-shards N] [--jobs N]
///                 [--collect]
///
/// Modes (all share one campaign spec; the scheduling modes need --store):
///
///   (default)    run every dataset x seed cell in this process, write the
///                three report artifacts under PREFIX.
///   --worker     one work-queue pass: claim available cells (flock claim
///                files under DIR/claims), run them, publish each result
///                as DIR/cells/<cell>.cell, and exit.  Run N of these
///                concurrently — same machine, or hosts sharing a
///                filesystem with working flock() semantics (local
///                disks, NFSv4-class mounts; not NFSv3/SMB) — to drain
///                one campaign into one shared store.
///   --shard-id K --num-shards N
///                restrict a --worker pass to cells where
///                index % N == K (static sharding; shards never contend).
///   --jobs N     supervisor: fork N local --worker subprocesses, wait,
///                pick up any cell orphaned by a crashed worker, then
///                collect and write the reports.
///   --collect    only merge DIR/cells/* into the reports (fails if any
///                cell is missing or stale).
///
/// Report artifacts (default, --jobs, and --collect modes):
///
///   PREFIX.fronts.json  — per-run + merged Pareto fronts, deterministic
///                         bytes (a warm rerun — or the same campaign run
///                         with any number of worker processes — must
///                         produce an identical file; CI compares them
///                         with cmp)
///   PREFIX.report.json  — fronts + baselines + cache/timing statistics
///   PREFIX.md           — human-readable markdown report (also printed)
///
/// --require-warm makes the exit status assert the resume guarantee:
/// nonzero unless every evaluation was served from the store (zero cache
/// misses, nonzero hits).

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "pnm/core/campaign.hpp"
#include "pnm/util/fileio.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--datasets a,b,c] [--seeds 42,43] [--pop N] [--gens G]\n"
               "       [--train-epochs E] [--finetune E] [--ga-finetune E]\n"
               "       [--threads N] [--store DIR] [--out PREFIX] [--require-warm]\n"
               "       [--worker] [--shard-id K --num-shards N] [--jobs N]\n"
               "       [--collect]\n";
}

int write_reports(const pnm::CampaignResult& result, const std::string& out_prefix,
                  bool require_warm) {
  std::cout << result.report_markdown() << '\n';
  const std::string fronts_path = out_prefix + ".fronts.json";
  const std::string report_path = out_prefix + ".report.json";
  const std::string md_path = out_prefix + ".md";
  bool wrote = pnm::write_text_file_atomic(fronts_path, result.fronts_json());
  wrote = pnm::write_text_file_atomic(report_path, result.report_json()) && wrote;
  wrote = pnm::write_text_file_atomic(md_path, result.report_markdown()) && wrote;
  if (!wrote) {
    std::cerr << "error: failed writing report files under prefix " << out_prefix
              << '\n';
    return EXIT_FAILURE;
  }
  std::cout << "wrote " << fronts_path << ", " << report_path << ", " << md_path
            << '\n';

  if (require_warm) {
    if (result.total_cache_misses() != 0 || result.total_cache_hits() == 0) {
      std::cerr << "--require-warm: expected a fully warm campaign, got "
                << result.total_cache_hits() << " hits / "
                << result.total_cache_misses() << " misses\n";
      return EXIT_FAILURE;
    }
    std::cout << "warm-run check passed: every evaluation served from the store ("
              << result.total_cache_hits() << " hits, 0 misses)\n";
  }
  return EXIT_SUCCESS;
}

void print_worker_summary(const char* who, const pnm::CampaignWorkerResult& w) {
  std::cout << who << ": ran " << w.cells_run << " cell(s), skipped "
            << w.cells_skipped_done << " done / " << w.cells_skipped_claimed
            << " claimed by live workers / " << w.cells_skipped_other_shard
            << " other-shard, in " << w.seconds << " s\n";
}

/// Runs one worker pass in this process (used by --worker and by each
/// forked --jobs child).  Catches everything: a forked child must report
/// and _exit, never unwind through main via std::terminate.
int run_worker_pass(pnm::CampaignSpec spec, std::size_t shard_id,
                    std::size_t num_shards, const char* who) {
  try {
    pnm::CampaignRunner runner(std::move(spec));
    const pnm::CampaignWorkerResult w = runner.run_worker(shard_id, num_shards);
    print_worker_summary(who, w);
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << who << ": error: " << e.what() << '\n';
    return EXIT_FAILURE;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pnm;

  CampaignSpec spec;
  spec.datasets = {"seeds"};
  spec.base.train.epochs = 40;
  spec.base.finetune_epochs = 8;
  spec.ga.population = 16;
  spec.ga.generations = 8;
  std::string out_prefix = "campaign";
  bool require_warm = false;
  bool worker = false;
  bool collect_only = false;
  std::size_t shard_id = 0;
  std::size_t num_shards = 1;
  std::size_t jobs = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    const bool has_value = i + 1 < argc;
    if (arg == "--datasets" && has_value) {
      spec.datasets = split_csv(argv[++i]);
    } else if (arg == "--seeds" && has_value) {
      spec.seeds.clear();
      for (const std::string& s : split_csv(argv[++i])) {
        spec.seeds.push_back(std::strtoull(s.c_str(), nullptr, 10));
      }
    } else if (arg == "--pop" && has_value) {
      spec.ga.population = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--gens" && has_value) {
      spec.ga.generations = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--train-epochs" && has_value) {
      spec.base.train.epochs = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--finetune" && has_value) {
      spec.base.finetune_epochs = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--ga-finetune" && has_value) {
      spec.ga_finetune_epochs = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--threads" && has_value) {
      spec.threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--store" && has_value) {
      spec.store_dir = argv[++i];
    } else if (arg == "--out" && has_value) {
      out_prefix = argv[++i];
    } else if (arg == "--require-warm") {
      require_warm = true;
    } else if (arg == "--worker") {
      worker = true;
    } else if (arg == "--collect") {
      collect_only = true;
    } else if (arg == "--shard-id" && has_value) {
      shard_id = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--num-shards" && has_value) {
      num_shards = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--jobs" && has_value) {
      jobs = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      usage(argv[0]);
      return EXIT_FAILURE;
    }
  }

  const bool scheduling = worker || collect_only || jobs > 0;
  if (scheduling && spec.store_dir.empty()) {
    std::cerr << "error: --worker/--jobs/--collect need --store DIR (claims and "
                 "cell results live there)\n";
    return EXIT_FAILURE;
  }
  if ((worker && (collect_only || jobs > 0)) || (collect_only && jobs > 0)) {
    std::cerr << "error: --worker, --jobs, and --collect are mutually exclusive\n";
    return EXIT_FAILURE;
  }

  if (worker) {
    // Distinct preferred store segments per shard: purely an optimization
    // (the store probes past held segments anyway).
    spec.writer_id = shard_id;
    return run_worker_pass(std::move(spec), shard_id, num_shards, "worker");
  }

  if (collect_only) {
    const std::optional<CampaignResult> result = collect_campaign(spec);
    if (!result) {
      std::cerr << "error: campaign incomplete — missing or stale cell results "
                   "under "
                << spec.store_dir << "/cells (run more workers, then collect "
                << "again)\n";
      return EXIT_FAILURE;
    }
    return write_reports(*result, out_prefix, require_warm);
  }

  if (jobs > 0) {
    // Supervisor: fork the workers *before* any CampaignRunner exists in
    // this process (so no thread pool crosses a fork), wait for them,
    // sweep up anything a crashed worker orphaned, then collect.
    std::cout << "supervisor: spawning " << jobs << " worker process(es)\n";
    std::fflush(nullptr);
    std::vector<pid_t> children;
    for (std::size_t j = 0; j < jobs; ++j) {
      const pid_t pid = fork();
      if (pid < 0) {
        std::perror("fork");
        return EXIT_FAILURE;
      }
      if (pid == 0) {
        CampaignSpec child_spec = spec;
        child_spec.writer_id = j;  // preferred segment only; probing is safe
        const int status = run_worker_pass(
            std::move(child_spec), /*shard_id=*/0, /*num_shards=*/1, "worker");
        std::fflush(nullptr);
        _exit(status);
      }
      children.push_back(pid);
    }
    bool worker_failed = false;
    for (pid_t pid : children) {
      int status = 0;
      if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
          WEXITSTATUS(status) != EXIT_SUCCESS) {
        worker_failed = true;
      }
    }
    if (worker_failed) {
      std::cerr << "supervisor: a worker exited abnormally — sweeping up its "
                   "cells locally\n";
    }
    std::optional<CampaignResult> result = collect_campaign(spec);
    if (!result) {
      // A worker died mid-cell; its claim evaporated with it, so one
      // local pass finishes the stragglers.
      CampaignRunner sweeper(spec);
      print_worker_summary("supervisor-sweep", sweeper.run_worker());
      result = collect_campaign(spec);
    }
    if (!result) {
      std::cerr << "error: campaign still incomplete after the sweep pass\n";
      return EXIT_FAILURE;
    }
    return write_reports(*result, out_prefix, require_warm);
  }

  // Default: the whole campaign in this process.
  CampaignRunner runner(std::move(spec));
  std::cout << "campaign: " << runner.spec().datasets.size() << " dataset(s) x "
            << runner.spec().seeds.size() << " seed(s), pop "
            << runner.spec().ga.population << ", " << runner.spec().ga.generations
            << " gens, " << runner.threads() << " shared worker thread(s)"
            << (runner.spec().store_dir.empty()
                    ? ", no persistence"
                    : ", store dir " + runner.spec().store_dir)
            << "\n\n";
  const CampaignResult result = runner.run();
  return write_reports(result, out_prefix, require_warm);
}
