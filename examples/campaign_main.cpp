/// \file campaign_main.cpp
/// \brief CLI driver for multi-dataset GA campaigns (pnm/core/campaign.hpp).
///
/// Usage:
///   campaign_main [--datasets a,b,c] [--seeds 42,43] [--pop N] [--gens G]
///                 [--train-epochs E] [--finetune E] [--ga-finetune E]
///                 [--threads N] [--store DIR] [--out PREFIX] [--require-warm]
///
/// Runs the Fig. 2 hardware-aware GA for every dataset x seed cell,
/// reusing one worker pool across all runs and (with --store) resuming
/// from the persistent evaluation stores in DIR.  Writes three artifacts:
///
///   PREFIX.fronts.json  — per-run + merged Pareto fronts, deterministic
///                         bytes (a warm rerun must produce an identical
///                         file; CI compares them with cmp)
///   PREFIX.report.json  — fronts + baselines + cache/timing statistics
///   PREFIX.md           — human-readable markdown report (also printed)
///
/// --require-warm makes the exit status assert the resume guarantee:
/// nonzero unless every evaluation was served from the store (zero cache
/// misses, nonzero hits).

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "pnm/core/campaign.hpp"
#include "pnm/util/fileio.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--datasets a,b,c] [--seeds 42,43] [--pop N] [--gens G]\n"
               "       [--train-epochs E] [--finetune E] [--ga-finetune E]\n"
               "       [--threads N] [--store DIR] [--out PREFIX] [--require-warm]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pnm;

  CampaignSpec spec;
  spec.datasets = {"seeds"};
  spec.base.train.epochs = 40;
  spec.base.finetune_epochs = 8;
  spec.ga.population = 16;
  spec.ga.generations = 8;
  std::string out_prefix = "campaign";
  bool require_warm = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    const bool has_value = i + 1 < argc;
    if (arg == "--datasets" && has_value) {
      spec.datasets = split_csv(argv[++i]);
    } else if (arg == "--seeds" && has_value) {
      spec.seeds.clear();
      for (const std::string& s : split_csv(argv[++i])) {
        spec.seeds.push_back(std::strtoull(s.c_str(), nullptr, 10));
      }
    } else if (arg == "--pop" && has_value) {
      spec.ga.population = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--gens" && has_value) {
      spec.ga.generations = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--train-epochs" && has_value) {
      spec.base.train.epochs = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--finetune" && has_value) {
      spec.base.finetune_epochs = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--ga-finetune" && has_value) {
      spec.ga_finetune_epochs = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--threads" && has_value) {
      spec.threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--store" && has_value) {
      spec.store_dir = argv[++i];
    } else if (arg == "--out" && has_value) {
      out_prefix = argv[++i];
    } else if (arg == "--require-warm") {
      require_warm = true;
    } else {
      usage(argv[0]);
      return EXIT_FAILURE;
    }
  }

  CampaignRunner runner(std::move(spec));
  std::cout << "campaign: " << runner.spec().datasets.size() << " dataset(s) x "
            << runner.spec().seeds.size() << " seed(s), pop "
            << runner.spec().ga.population << ", " << runner.spec().ga.generations
            << " gens, " << runner.threads() << " shared worker thread(s)"
            << (runner.spec().store_dir.empty()
                    ? ", no persistence"
                    : ", store dir " + runner.spec().store_dir)
            << "\n\n";

  const CampaignResult result = runner.run();
  std::cout << result.report_markdown() << '\n';

  const std::string fronts_path = out_prefix + ".fronts.json";
  const std::string report_path = out_prefix + ".report.json";
  const std::string md_path = out_prefix + ".md";
  bool wrote = write_text_file_atomic(fronts_path, result.fronts_json());
  wrote = write_text_file_atomic(report_path, result.report_json()) && wrote;
  wrote = write_text_file_atomic(md_path, result.report_markdown()) && wrote;
  if (!wrote) {
    std::cerr << "error: failed writing report files under prefix " << out_prefix
              << '\n';
    return EXIT_FAILURE;
  }
  std::cout << "wrote " << fronts_path << ", " << report_path << ", " << md_path
            << '\n';

  if (require_warm) {
    if (result.total_cache_misses() != 0 || result.total_cache_hits() == 0) {
      std::cerr << "--require-warm: expected a fully warm campaign, got "
                << result.total_cache_hits() << " hits / "
                << result.total_cache_misses() << " misses\n";
      return EXIT_FAILURE;
    }
    std::cout << "warm-run check passed: every evaluation served from the store ("
              << result.total_cache_hits() << " hits, 0 misses)\n";
  }
  return EXIT_SUCCESS;
}
