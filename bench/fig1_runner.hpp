#ifndef PNM_BENCH_FIG1_RUNNER_HPP
#define PNM_BENCH_FIG1_RUNNER_HPP

/// \file fig1_runner.hpp
/// \brief Shared driver for the four Figure-1 panels.
///
/// Paper, Figure 1: "Area-Accuracy trade-off of the printed MLPs with
/// quantization, pruning, and weight clustering.  Values are normalized
/// over each baseline MLP.  Classifiers: (a) WhiteWine, (b) RedWine,
/// (c) Pendigits, (d) Seeds."
///
/// Parameters reproduce §III: unstructured pruning at 20-60 % sparsity,
/// quantization at 2-7 bit weights, clustering over a range of cluster
/// counts; the baseline is the unminimized 8-bit bespoke MLP.

#include "common.hpp"

namespace pnm::bench {

/// Runs one Figure-1 panel.  csv_dir (e.g. from argv[1]) additionally
/// dumps the three series as <csv_dir>/fig1_<dataset>.csv for plotting.
inline int run_fig1(const std::string& dataset, const std::string& panel,
                    const std::string& csv_dir = "") {
  std::cout << "==============================================================\n";
  std::cout << "Figure 1(" << panel << "): standalone minimization fronts on " << dataset
            << "\n";
  std::cout << "==============================================================\n\n";

  MinimizationFlow flow(figure_flow_config(dataset));
  flow.prepare();
  print_baseline(flow);
  const auto& baseline = flow.baseline();

  const auto quant = flow.sweep_quantization(2, 7);
  const auto prune = flow.sweep_pruning({0.2, 0.3, 0.4, 0.5, 0.6});
  const auto cluster = flow.sweep_clustering({2, 3, 4, 6, 8});

  print_series("quantization (2-7 bit weights, QAT)", quant, baseline);
  print_series("unstructured pruning (20-60% sparsity)", prune, baseline);
  print_series("weight clustering (k per input position)", cluster, baseline);

  print_front("quantization", quant, baseline);
  print_front("pruning", prune, baseline);
  print_front("clustering", cluster, baseline);

  if (!csv_dir.empty()) {
    std::vector<DesignPoint> all = quant;
    all.insert(all.end(), prune.begin(), prune.end());
    all.insert(all.end(), cluster.begin(), cluster.end());
    write_points_csv(csv_dir + "/fig1_" + dataset + ".csv", all, baseline);
  }

  std::cout << "-- summary (paper: quant ~5x avg, prune ~2.8x, cluster ~3.5x) --\n";
  report_gain("quantization", quant, baseline);
  report_gain("pruning     ", prune, baseline);
  const auto cluster_gain = report_gain("clustering  ", cluster, baseline);
  if (!cluster_gain.has_value()) {
    std::cout << "(no clustering design met the 5% accuracy threshold on " << dataset
              << " - the paper reports this for Pendigits and Seeds)\n";
  }
  return 0;
}

}  // namespace pnm::bench

#endif  // PNM_BENCH_FIG1_RUNNER_HPP
