/// Extension bench: technology-library sensitivity.  The paper's figures
/// are normalized ratios, so they should be (nearly) invariant to the
/// absolute EGT cell costs.  This bench re-costs identical netlists under
/// the default EGT library and a hypothetical lower-cost variant with a
/// different XOR/AND ratio, and compares the resulting area gains.

#include "common.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/hw/bespoke.hpp"

int main() {
  using namespace pnm;
  using namespace pnm::bench;

  std::cout << "==============================================================\n";
  std::cout << "Sensitivity: EGT technology library variant\n";
  std::cout << "==============================================================\n\n";

  TextTable table({"dataset", "design", "gain (EGT)", "gain (EGT-lowcost)", "ratio"});
  for (const auto& dataset : {std::string("whitewine"), std::string("pendigits")}) {
    FlowConfig config = figure_flow_config(dataset);
    MinimizationFlow flow(config);
    flow.prepare();
    const std::size_t n_layers = flow.float_model().layer_count();

    Genome base;
    base.weight_bits.assign(n_layers, config.baseline_weight_bits);
    base.sparsity_pct.assign(n_layers, 0);
    base.clusters.assign(n_layers, 0);
    const QuantizedMlp q_base = flow.realize_genome(base, config.finetune_epochs);
    hw::BespokeOptions unshared;
    unshared.share_products = false;
    const hw::BespokeCircuit c_base(q_base, unshared);

    const std::vector<std::pair<std::string, Genome>> designs = [&] {
      std::vector<std::pair<std::string, Genome>> d;
      Genome g = base;
      g.weight_bits.assign(n_layers, 4);
      d.emplace_back("quant-4b", g);
      g = base;
      g.sparsity_pct.assign(n_layers, 50);
      d.emplace_back("prune-50%", g);
      g = base;
      g.weight_bits.assign(n_layers, 4);
      g.sparsity_pct.assign(n_layers, 30);
      g.clusters.assign(n_layers, 4);
      d.emplace_back("combined", g);
      return d;
    }();

    for (const auto& [name, genome] : designs) {
      const QuantizedMlp q = flow.realize_genome(genome, config.finetune_epochs);
      bool clustered = false;
      for (int k : genome.clusters) clustered |= (k > 0);
      hw::BespokeOptions options;
      options.share_products = clustered;
      const hw::BespokeCircuit c(q, options);
      const auto& egt = hw::TechLibrary::egt();
      const auto& low = hw::TechLibrary::egt_lowcost();
      const double gain_egt = c_base.area_mm2(egt) / c.area_mm2(egt);
      const double gain_low = c_base.area_mm2(low) / c.area_mm2(low);
      table.add_row({dataset, name, format_factor(gain_egt), format_factor(gain_low),
                     format_fixed(gain_egt / gain_low, 3)});
    }
    table.add_separator();
  }
  std::cout << table.to_string() << '\n';
  std::cout << "expected shape: gain ratios within ~15% of 1.0 - the paper's "
               "normalized conclusions do not hinge on exact EGT cell numbers.\n";
  return 0;
}
