/// Ablation A3 (DESIGN.md): fidelity of the analytic area proxy the GA
/// uses as its inner-loop fitness, against the exact netlist area.
/// Rank correlation is what the GA needs; the ratio band shows how far
/// absolute estimates stray.

#include <algorithm>
#include <cmath>

#include "common.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/hw/bespoke.hpp"
#include "pnm/hw/proxy.hpp"
#include "pnm/util/rng.hpp"

namespace {

double spearman(std::vector<double> a, std::vector<double> b) {
  auto ranks = [](std::vector<double> v) {
    std::vector<std::size_t> idx(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&v](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (std::size_t i = 0; i < idx.size(); ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto ra = ranks(std::move(a));
  const auto rb = ranks(std::move(b));
  const double n = static_cast<double>(ra.size());
  double d2 = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

}  // namespace

int main() {
  using namespace pnm;
  using namespace pnm::bench;

  std::cout << "==============================================================\n";
  std::cout << "Ablation A3: GA area proxy vs exact netlist area\n";
  std::cout << "==============================================================\n\n";

  TextTable table({"dataset", "designs", "spearman rank corr", "ratio min", "ratio max",
                   "ratio mean"});
  for (const auto& dataset : paper_dataset_names()) {
    FlowConfig config = figure_flow_config(dataset);
    MinimizationFlow flow(config);
    flow.prepare();
    const std::size_t n_layers = flow.float_model().layer_count();

    // Random designs spanning the GA's search space.
    Rng rng(99);
    GaConfig space;
    std::vector<double> exact, proxy;
    const int n_designs = 24;
    for (int i = 0; i < n_designs; ++i) {
      Genome genome;
      genome.weight_bits.resize(n_layers);
      genome.sparsity_pct.resize(n_layers);
      genome.clusters.resize(n_layers);
      for (std::size_t li = 0; li < n_layers; ++li) {
        genome.weight_bits[li] = rng.uniform_int(space.min_bits, space.max_bits);
        genome.sparsity_pct[li] = space.sparsity_choices[static_cast<std::size_t>(
            rng.uniform_int(std::uint64_t{space.sparsity_choices.size()}))];
        genome.clusters[li] = space.cluster_choices[static_cast<std::size_t>(
            rng.uniform_int(std::uint64_t{space.cluster_choices.size()}))];
      }
      const QuantizedMlp qmodel = flow.realize_genome(genome, 2);
      exact.push_back(hw::BespokeCircuit(qmodel).area_mm2(flow.tech()));
      proxy.push_back(hw::estimate_area_mm2(qmodel, flow.tech()));
    }
    double rmin = 1e18, rmax = 0.0, rsum = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      const double r = proxy[i] / exact[i];
      rmin = std::min(rmin, r);
      rmax = std::max(rmax, r);
      rsum += r;
    }
    table.add_row({dataset, std::to_string(n_designs),
                   format_fixed(spearman(exact, proxy), 3), format_fixed(rmin, 2),
                   format_fixed(rmax, 2), format_fixed(rsum / exact.size(), 2)});
  }
  std::cout << table.to_string() << '\n';
  std::cout << "the GA only needs ranking fidelity; correlation ~1 means the proxy "
               "is a faithful inner-loop fitness at a fraction of the cost.\n";
  return 0;
}
