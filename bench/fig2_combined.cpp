/// Figure 2: "Area-Accuracy trade-off of the WhiteWine MLP classifier when
/// quantization, pruning, weight clustering and all the three minimization
/// techniques are combined" (via the hardware-aware genetic algorithm).
///
/// Reproduces the figure by printing the three standalone fronts next to
/// the combined NSGA-II front, all normalized to the unminimized 8-bit
/// baseline, and the headline "up to 8x at 5% loss" query.

#include "common.hpp"

int main() {
  using namespace pnm;
  using namespace pnm::bench;

  std::cout << "==============================================================\n";
  std::cout << "Figure 2: combined minimization via hardware-aware GA "
               "(WhiteWine)\n";
  std::cout << "==============================================================\n\n";

  MinimizationFlow flow(figure_flow_config("whitewine"));
  flow.prepare();
  print_baseline(flow);
  const auto& baseline = flow.baseline();

  // Standalone fronts (same sweeps as Figure 1a).
  const auto quant = flow.sweep_quantization(2, 7);
  const auto prune = flow.sweep_pruning({0.2, 0.3, 0.4, 0.5, 0.6});
  const auto cluster = flow.sweep_clustering({2, 3, 4, 6, 8});

  // Combined search over per-layer {bits, sparsity, clusters}.  Fitness
  // backend: thread-parallel proxy evaluation — bit-identical to the
  // serial path, faster on multicore hosts.
  GaConfig ga;
  ga.population = 32;
  ga.generations = 20;
  auto proxy = flow.proxy_evaluator(/*finetune_epochs=*/2);
  ParallelEvaluator fitness(proxy);
  std::cout << "running NSGA-II (population " << ga.population << ", "
            << ga.generations << " generations, fitness backend "
            << fitness.name() << ")...\n";
  const auto outcome = flow.run_ga(fitness, ga);
  std::cout << "distinct designs evaluated: " << outcome.raw.evaluations << "\n\n";

  print_front("quantization standalone", quant, baseline);
  print_front("pruning standalone", prune, baseline);
  print_front("clustering standalone", cluster, baseline);
  print_series("combined (GA front, exact netlist re-evaluation)", outcome.front,
               baseline);

  std::cout << "-- summary (paper: combined reaches up to 8x at 5% loss, beating "
               "every standalone technique) --\n";
  const double gq = gain_or_baseline(report_gain("quantization", quant, baseline));
  const double gp = gain_or_baseline(report_gain("pruning     ", prune, baseline));
  const double gc = gain_or_baseline(report_gain("clustering  ", cluster, baseline));
  const double gga =
      gain_or_baseline(report_gain("combined GA ", outcome.front, baseline));
  const double best_standalone = std::max(gq, std::max(gp, gc));
  std::cout << "\ncombined vs best standalone: " << format_factor(gga) << " vs "
            << format_factor(best_standalone)
            << (gga >= best_standalone ? "  [combined wins, as in the paper]"
                                       : "  [WARNING: expected combined to win]")
            << '\n';
  return 0;
}
