/// Extension bench: seed robustness of the headline conclusions.  The
/// synthetic analogs are random draws; this bench re-runs the @5%-loss
/// comparison on three independent dataset realizations to show the
/// orderings (quant best standalone, combined dominates) are not
/// one-draw flukes.

#include "common.hpp"
#include "pnm/data/synth.hpp"

int main() {
  using namespace pnm;
  using namespace pnm::bench;

  std::cout << "==============================================================\n";
  std::cout << "Robustness: headline comparison across dataset realizations\n";
  std::cout << "==============================================================\n\n";

  TextTable table({"dataset", "seed", "quant", "prune", "cluster", "combined",
                   "combined wins?"});
  std::size_t wins = 0, runs = 0;
  for (const auto& dataset : {std::string("redwine"), std::string("seeds")}) {
    for (std::uint64_t seed : {42ULL, 1042ULL, 2042ULL}) {
      FlowConfig config = figure_flow_config(dataset);
      config.seed = seed;
      MinimizationFlow flow(config);
      flow.prepare();
      const auto& baseline = flow.baseline();
      const double acc = baseline.accuracy;
      const double area = baseline.area_mm2;

      const auto gq =
          best_area_gain_at_loss(flow.sweep_quantization(2, 7), acc, area, 0.05);
      const auto gp = best_area_gain_at_loss(
          flow.sweep_pruning({0.2, 0.4, 0.6}), acc, area, 0.05);
      const auto gc =
          best_area_gain_at_loss(flow.sweep_clustering({2, 4, 8}), acc, area, 0.05);
      GaConfig ga;
      ga.population = 20;
      ga.generations = 10;
      auto proxy = flow.proxy_evaluator(/*finetune_epochs=*/2);
      ParallelEvaluator fitness(proxy);
      const auto gga =
          best_area_gain_at_loss(flow.run_ga(fitness, ga).front, acc, area, 0.05);

      const bool combined_wins =
          gain_or_baseline(gga) >=
          std::max(gain_or_baseline(gq),
                   std::max(gain_or_baseline(gp), gain_or_baseline(gc)));
      wins += combined_wins ? 1 : 0;
      ++runs;
      table.add_row({dataset, std::to_string(seed), format_gain(gq),
                     format_gain(gp), format_gain(gc), format_gain(gga),
                     combined_wins ? "yes" : "no"});
    }
    table.add_separator();
  }
  std::cout << table.to_string() << '\n';
  std::cout << "combined technique wins in " << wins << "/" << runs
            << " independent runs (paper claim: combination outperforms "
               "standalone techniques).\n";
  return 0;
}
