/// Ablation A2 (DESIGN.md): cross-neuron product sharing on/off.
/// Sharing is the hardware mechanism §II-C's weight clustering exploits:
/// with it, a column with k distinct weight magnitudes costs at most k
/// multipliers.  Without sharing, clustering loses (almost) all of its
/// area leverage — which this bench demonstrates.

#include "common.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/hw/bespoke.hpp"

int main() {
  using namespace pnm;
  using namespace pnm::bench;

  std::cout << "==============================================================\n";
  std::cout << "Ablation A2: cross-neuron multiplier sharing\n";
  std::cout << "==============================================================\n\n";

  TextTable table({"dataset", "clusters", "area shared", "area unshared", "sharing gain",
                   "multipliers shared", "multipliers unshared"});
  for (const auto& dataset : paper_dataset_names()) {
    FlowConfig config = figure_flow_config(dataset);
    MinimizationFlow flow(config);
    flow.prepare();
    const std::size_t n_layers = flow.float_model().layer_count();
    for (int clusters : {0, 4, 2}) {
      Genome genome;
      genome.weight_bits.assign(n_layers, config.baseline_weight_bits);
      genome.sparsity_pct.assign(n_layers, 0);
      genome.clusters.assign(n_layers, clusters);
      const QuantizedMlp qmodel = flow.realize_genome(genome, config.finetune_epochs);

      hw::BespokeOptions shared;
      hw::BespokeOptions unshared;
      unshared.share_products = false;
      const hw::BespokeCircuit with(qmodel, shared);
      const hw::BespokeCircuit without(qmodel, unshared);
      const double area_with = with.area_mm2(flow.tech());
      const double area_without = without.area_mm2(flow.tech());
      table.add_row({dataset, clusters == 0 ? "off" : "k=" + std::to_string(clusters),
                     format_fixed(area_with, 1), format_fixed(area_without, 1),
                     format_factor(area_without / area_with),
                     std::to_string(with.multiplier_count()),
                     std::to_string(without.multiplier_count())});
    }
    table.add_separator();
  }
  std::cout << table.to_string() << '\n';
  std::cout << "expected shape: the sharing gain grows as clustering forces weight "
               "collisions (k=2 > k=4 > off).\n";
  return 0;
}
