/// serve_bench — latency/throughput measurement and machine-checked
/// correctness gates for the serving layer; writes BENCH_serve.json.
///
/// The bench is a test first and a benchmark second: it exits nonzero
/// unless
///   1. every server response over real loopback TCP is bit-identical to
///      the offline `predict_quantized_into` on the full test split;
///   2. every open-loop rate run answers every request with zero
///      mismatches (responses verified per the version that served them);
///   3. two hot-swaps performed *under load* lose or mis-serve nothing —
///      responses spanning three model versions all verify against the
///      design their version tag names;
///   4. the server's own counters account for every batch and response.
///
/// What it records per offered rate: client-side exact p50/p99/mean
/// latency, offered vs achieved throughput, and the serving config
/// (workers, batch bound, deadline, machine cores via bench/common.hpp).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "pnm/core/model_io.hpp"
#include "pnm/util/build_info.hpp"
#include "pnm/core/quantize.hpp"
#include "pnm/data/scaler.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/nn/trainer.hpp"
#include "pnm/serve/client.hpp"
#include "pnm/serve/server.hpp"
#include "pnm/util/fileio.hpp"
#include "pnm/util/rng.hpp"

namespace {

using namespace pnm;
using namespace pnm::serve;

QuantizedMlp train_design(const Dataset& train, std::size_t n_classes, std::uint64_t seed,
                          const QuantSpec& spec) {
  Rng rng(seed);
  Mlp model({train.n_features(), 10, n_classes}, rng);
  TrainConfig config;
  config.epochs = 8;
  Trainer trainer(config);
  trainer.set_weight_view(make_qat_view(spec));
  trainer.fit(model, train, rng);
  return QuantizedMlp::from_float(model, spec);
}

struct RateRow {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  std::size_t requests = 0;
  std::size_t received = 0;
};

int fail(const std::string& why) {
  std::cerr << "FAIL: " << why << '\n';
  return 1;
}

}  // namespace

int main() {
  // Sanitizer builds run this bench as a correctness gate only: offered
  // rates and request counts are scaled down by the instrumentation
  // slowdown so the open-loop generator does not outrun the server, and
  // the recorded numbers are marked unrepresentative.
  const int slow = pnm::build_info::timing_multiplier();
  if (slow > 1) {
    std::cout << "sanitizer build (" << pnm::build_info::sanitizer_name()
              << "): scaling offered load down by " << slow << "x\n";
  }

  // ---- Two deployable designs (A serves first; B is the swap target) ----
  const Dataset data = make_pendigits();
  Rng rng(42);
  DataSplit split = stratified_split(data, 0.6, 0.2, 0.2, rng);
  MinMaxScaler scaler;
  scale_split(split, scaler);
  const QuantSpec spec = QuantSpec::uniform(2, 5, 4);

  std::cout << "training design pair on " << data.name << " ("
            << split.train.size() << " train samples)...\n";
  const QuantizedMlp design_a = train_design(split.train, data.n_classes, 1, spec);
  const QuantizedMlp design_b = train_design(split.train, data.n_classes, 2, spec);

  const std::string path_a = "serve_bench_model_a.pnm";
  const std::string path_b = "serve_bench_model_b.pnm";
  if (!save_quantized_mlp(design_a, path_a, "bench-a") ||
      !save_quantized_mlp(design_b, path_b, "bench-b")) {
    return fail("cannot write model files");
  }

  ServeConfig config;
  config.batch_max = 32;
  config.batch_deadline_us = 200;
  config.worker_threads = 2;
  Server server(config, {design_a, 0, path_a});
  server.start();
  std::cout << "server up on port " << server.port() << " ("
            << config.worker_threads << " workers, batch<=" << config.batch_max
            << ", " << config.batch_deadline_us << "us deadline)\n";

  // ---- Gate 1: bit-exactness on the full test split over TCP -----------
  std::size_t checked = 0;
  {
    ServeClient client;
    if (!client.connect("127.0.0.1", server.port())) return fail("connect");
    InferScratch scratch;
    std::vector<std::int64_t> xq;
    PredictResponse resp;
    for (std::size_t i = 0; i < split.test.size(); ++i) {
      if (!client.send_predict(static_cast<std::uint32_t>(i), split.test.x[i])) {
        return fail("send");
      }
      if (!client.read_predict(resp)) return fail("no response");
      quantize_input_into(split.test.x[i], design_a.input_bits(), xq);
      const std::size_t expect = design_a.predict_quantized_into(xq, scratch);
      if (resp.predicted_class != expect || resp.model_version != 1) {
        return fail("response differs from offline predict at sample " +
                    std::to_string(i));
      }
      ++checked;
    }
  }
  std::cout << "bit-exact gate: " << checked << "/" << split.test.size()
            << " test samples identical to offline inference\n";

  // ---- Open-loop samples (shared by the rate and swap runs) ------------
  std::vector<std::vector<double>> samples(split.test.x.begin(),
                                           split.test.x.begin() +
                                               static_cast<long>(std::min(
                                                   split.test.size(), std::size_t{64})));

  // ---- Gate 2: latency/throughput at three offered rates ---------------
  std::vector<RateRow> rows;
  for (const double base_rate : {2000.0, 8000.0, 20000.0}) {
    const double rate = base_rate / slow;
    LoadGenConfig load;
    load.port = server.port();
    load.rate = rate;
    load.total_requests = static_cast<std::size_t>(rate / 4.0);  // ~250ms each
    load.samples = &samples;
    load.verify[server.current_model()->version] = &design_a;
    const LoadGenReport report = run_load(load);
    if (!report.ok()) {
      return fail("rate " + std::to_string(rate) + ": sent=" + std::to_string(report.sent) +
                  " received=" + std::to_string(report.received) + " mismatches=" +
                  std::to_string(report.mismatches));
    }
    RateRow row;
    row.offered_rps = report.offered_rps;
    row.achieved_rps = report.achieved_rps;
    row.p50_us = report.p50_us;
    row.p99_us = report.p99_us;
    row.mean_us = report.mean_us;
    row.requests = report.sent;
    row.received = report.received;
    rows.push_back(row);
    std::cout << "rate " << rate << " rps: achieved " << report.achieved_rps
              << " rps, p50 " << report.p50_us << "us, p99 " << report.p99_us
              << "us (" << report.received << "/" << report.sent << " verified)\n";
  }

  // ---- Gate 3: two hot-swaps under load, zero loss, bit-exact ----------
  LoadGenConfig swap_load;
  swap_load.port = server.port();
  swap_load.rate = 8000.0 / slow;
  swap_load.total_requests = 4000 / static_cast<std::size_t>(slow);
  swap_load.samples = &samples;
  swap_load.swaps[swap_load.total_requests / 4] = path_b;      // -> version 2
  swap_load.swaps[swap_load.total_requests * 5 / 8] = path_a;  // -> version 3
  swap_load.verify[1] = &design_a;
  swap_load.verify[2] = &design_b;
  swap_load.verify[3] = &design_a;
  const LoadGenReport swap_report = run_load(swap_load);
  if (!swap_report.ok()) {
    return fail("hot-swap run: received=" + std::to_string(swap_report.received) + "/" +
                std::to_string(swap_report.sent) + " mismatches=" +
                std::to_string(swap_report.mismatches) + " unknown=" +
                std::to_string(swap_report.unknown_version) + " swap_failures=" +
                std::to_string(swap_report.swap_failures));
  }
  if (swap_report.responses_by_version.size() < 2) {
    return fail("hot-swap run never served the swapped design");
  }
  std::cout << "hot-swap under load: " << swap_report.received << "/"
            << swap_report.sent << " responses verified across "
            << swap_report.responses_by_version.size() << " model versions, p99 "
            << swap_report.p99_us << "us\n";

  // ---- Gate 4: the server's own accounting -----------------------------
  const MetricsSnapshot stats = server.stats();
  std::uint64_t hist_batches = 0;
  std::uint64_t hist_responses = 0;
  for (std::size_t s = 1; s < stats.batch_size_hist.size(); ++s) {
    hist_batches += stats.batch_size_hist[s];
    hist_responses += stats.batch_size_hist[s] * s;
  }
  if (hist_batches != stats.batches_total || hist_responses != stats.responses_total) {
    return fail("batch histogram does not account for every response");
  }
  if (stats.swaps_ok != 2 || stats.model_version != 3) {
    return fail("swap accounting wrong");
  }
  if (stats.dropped_responses != 0 || stats.predict_errors != 0 ||
      stats.protocol_errors != 0) {
    return fail("server reported errors during a clean run");
  }
  std::cout << "server accounting: " << stats.responses_total << " responses in "
            << stats.batches_total << " batches, mean batch "
            << stats.mean_batch_size() << ", server-side p99 "
            << stats.latency_percentile_us(99) << "us\n";

  server.stop();
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());

  // ---- BENCH_serve.json -------------------------------------------------
  std::ofstream json("BENCH_serve.json");
  if (!json) return fail("cannot write BENCH_serve.json");
  json << "[\n";
  for (const RateRow& row : rows) {
    json << "  {\"bench\": \"serve_latency\", \"offered_rps\": "
         << format_double_roundtrip(row.offered_rps) << ", \"achieved_rps\": "
         << format_double_roundtrip(row.achieved_rps) << ", \"p50_us\": "
         << format_double_roundtrip(row.p50_us) << ", \"p99_us\": "
         << format_double_roundtrip(row.p99_us) << ", \"mean_us\": "
         << format_double_roundtrip(row.mean_us) << ", \"requests\": " << row.requests
         << ", \"received\": " << row.received << ", \"bit_exact\": true"
         << ", \"worker_threads\": " << config.worker_threads
         << ", \"batch_max\": " << config.batch_max
         << ", \"batch_deadline_us\": " << config.batch_deadline_us
         << ", \"machine_cores\": " << bench::machine_cores()
         << ", \"isa\": \"" << bench::machine_isa()
         << "\", \"sanitizer\": \"" << pnm::build_info::sanitizer_name() << "\"},\n";
  }
  json << "  {\"bench\": \"serve_hot_swap\", \"offered_rps\": "
       << format_double_roundtrip(swap_load.rate) << ", \"requests\": "
       << swap_report.sent << ", \"received\": " << swap_report.received
       << ", \"mismatches\": " << swap_report.mismatches << ", \"unknown_version\": "
       << swap_report.unknown_version << ", \"dropped\": "
       << (swap_report.sent - swap_report.received) << ", \"swaps\": 2"
       << ", \"versions_seen\": " << swap_report.responses_by_version.size()
       << ", \"p50_us\": " << format_double_roundtrip(swap_report.p50_us)
       << ", \"p99_us\": " << format_double_roundtrip(swap_report.p99_us)
       << ", \"bit_exact\": true, \"worker_threads\": " << config.worker_threads
       << ", \"batch_max\": " << config.batch_max << ", \"batch_deadline_us\": "
       << config.batch_deadline_us << ", \"machine_cores\": " << bench::machine_cores()
       << ", \"isa\": \"" << bench::machine_isa() << "\"}\n]\n";
  json.close();
  std::cout << "(wrote BENCH_serve.json)\n";
  return 0;
}
