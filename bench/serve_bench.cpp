/// serve_bench — latency/throughput measurement and machine-checked
/// correctness gates for the multi-reactor serving layer; writes
/// BENCH_serve.json (schema v2).
///
/// The bench is a test first and a benchmark second: it exits nonzero
/// unless, for EVERY (reactor count, model) cell of the matrix
/// {1, 2, 4} reactors x {alpha, beta} models:
///   1. every server response over real loopback TCP is bit-identical to
///      the offline `predict_quantized_into` on the full test split —
///      alpha via protocol-v1 frames, beta via v2 named routing;
///   2. every open-loop rate run answers every request with zero
///      mismatches (responses verified per the version that served them);
///   3. two hot-swaps per model performed *under concurrent load on both
///      models* lose or mis-serve nothing: each model's responses span
///      three versions, all bit-exact for the design their version tag
///      names, and swapping one model never moves the other's version;
///   4. the server's own counters balance exactly — the batch histogram
///      accounts for every response, per-reactor admissions sum to
///      requests_total, and per-model response counts (plus predict
///      errors) sum to responses_total.
///
/// What it records: client-side exact p50/p99/mean latency per offered
/// rate (1-reactor ladder, `serve_latency` rows) and aggregate two-model
/// throughput per reactor count (`serve_scale` rows), plus the serving
/// config (workers, batch bound, deadline, machine cores).  The
/// container pins everything to few cores, so the 2/4-reactor rows
/// record measured numbers, not a scaling claim.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "pnm/core/model_io.hpp"
#include "pnm/util/build_info.hpp"
#include "pnm/core/quantize.hpp"
#include "pnm/data/scaler.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/nn/trainer.hpp"
#include "pnm/serve/client.hpp"
#include "pnm/serve/server.hpp"
#include "pnm/util/fileio.hpp"
#include "pnm/util/rng.hpp"

namespace {

using namespace pnm;
using namespace pnm::serve;

QuantizedMlp train_design(const Dataset& train, std::size_t n_classes, std::uint64_t seed,
                          const QuantSpec& spec) {
  Rng rng(seed);
  Mlp model({train.n_features(), 10, n_classes}, rng);
  TrainConfig config;
  config.epochs = 8;
  Trainer trainer(config);
  trainer.set_weight_view(make_qat_view(spec));
  trainer.fit(model, train, rng);
  return QuantizedMlp::from_float(model, spec);
}

struct RateRow {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  std::size_t requests = 0;
  std::size_t received = 0;
};

struct ScaleRow {
  std::size_t reactors = 0;
  double offered_rps = 0.0;    ///< both loadgens combined
  double achieved_rps = 0.0;   ///< both loadgens combined
  double p99_us = 0.0;         ///< worse of the two loadgens
  std::size_t requests = 0;
  std::size_t received = 0;
  std::size_t swaps = 0;
  std::size_t versions_alpha = 0;
  std::size_t versions_beta = 0;
};

int fail(const std::string& why) {
  std::cerr << "FAIL: " << why << '\n';
  return 1;
}

/// Full-test-split bit-exactness for one model over one connection.
/// \param model_name  "" sends protocol-v1 frames; else v2 named frames.
bool bit_exact_split(std::uint16_t port, const std::string& model_name,
                     const QuantizedMlp& design, const Dataset& test, std::string& why) {
  ServeClient client;
  if (!client.connect("127.0.0.1", port)) {
    why = "connect";
    return false;
  }
  InferScratch scratch;
  std::vector<std::int64_t> xq;
  PredictResponse resp;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const bool sent = model_name.empty()
                          ? client.send_predict(static_cast<std::uint32_t>(i), test.x[i])
                          : client.send_predict_v2(static_cast<std::uint32_t>(i),
                                                   model_name, test.x[i]);
    if (!sent) {
      why = "send failed at sample " + std::to_string(i);
      return false;
    }
    if (!client.read_predict(resp)) {
      why = "no response at sample " + std::to_string(i);
      return false;
    }
    quantize_input_into(test.x[i], design.input_bits(), xq);
    const std::size_t expect = design.predict_quantized_into(xq, scratch);
    if (resp.predicted_class != expect || resp.model_version != 1) {
      why = "response differs from offline predict at sample " + std::to_string(i);
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  // Sanitizer builds run this bench as a correctness gate only: offered
  // rates and request counts are scaled down by the instrumentation
  // slowdown so the open-loop generator does not outrun the server, and
  // the recorded numbers are marked unrepresentative.
  const int slow = pnm::build_info::timing_multiplier();
  if (slow > 1) {
    std::cout << "sanitizer build (" << pnm::build_info::sanitizer_name()
              << "): scaling offered load down by " << slow << "x\n";
  }

  // ---- Four deployable designs: two models x (live + swap target) ------
  const Dataset data = make_pendigits();
  Rng rng(42);
  DataSplit split = stratified_split(data, 0.6, 0.2, 0.2, rng);
  MinMaxScaler scaler;
  scale_split(split, scaler);
  const QuantSpec spec = QuantSpec::uniform(2, 5, 4);

  std::cout << "training design quad on " << data.name << " ("
            << split.train.size() << " train samples)...\n";
  const QuantizedMlp design_a = train_design(split.train, data.n_classes, 1, spec);
  const QuantizedMlp design_a_alt = train_design(split.train, data.n_classes, 2, spec);
  const QuantizedMlp design_b = train_design(split.train, data.n_classes, 3, spec);
  const QuantizedMlp design_b_alt = train_design(split.train, data.n_classes, 4, spec);

  const std::string path_a = "serve_bench_model_a.pnm";
  const std::string path_a_alt = "serve_bench_model_a_alt.pnm";
  const std::string path_b = "serve_bench_model_b.pnm";
  const std::string path_b_alt = "serve_bench_model_b_alt.pnm";
  if (!save_quantized_mlp(design_a, path_a, "bench-a") ||
      !save_quantized_mlp(design_a_alt, path_a_alt, "bench-a-alt") ||
      !save_quantized_mlp(design_b, path_b, "bench-b") ||
      !save_quantized_mlp(design_b_alt, path_b_alt, "bench-b-alt")) {
    return fail("cannot write model files");
  }

  // ---- Open-loop samples (shared by every run) -------------------------
  const std::vector<std::vector<double>> samples(
      split.test.x.begin(),
      split.test.x.begin() +
          static_cast<long>(std::min(split.test.size(), std::size_t{64})));

  ServeConfig config;
  config.batch_max = 32;
  config.batch_deadline_us = 200;
  config.worker_threads = 2;

  std::vector<RateRow> latency_rows;
  std::vector<ScaleRow> scale_rows;

  for (const std::size_t reactors : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const std::string cell = "[reactors=" + std::to_string(reactors) + "] ";
    auto registry = std::make_shared<ModelRegistry>();
    std::string error;
    if (!registry->register_model("alpha", {design_a, 0, path_a, {}}, &error) ||
        !registry->register_model("beta", {design_b, 0, path_b, {}}, &error)) {
      return fail(cell + "registry: " + error);
    }
    config.reactors = reactors;
    Server server(config, registry);
    server.start();
    std::cout << cell << "server up on port " << server.port() << " ("
              << reactors << " reactors, " << config.worker_threads
              << " workers, batch<=" << config.batch_max << ", "
              << config.batch_deadline_us << "us deadline, 2 models)\n";

    // ---- Gate 1: bit-exactness on the full test split, per model -------
    std::string why;
    if (!bit_exact_split(server.port(), "", design_a, split.test, why)) {
      return fail(cell + "alpha (v1 frames): " + why);
    }
    if (!bit_exact_split(server.port(), "beta", design_b, split.test, why)) {
      return fail(cell + "beta (v2 frames): " + why);
    }
    std::cout << cell << "bit-exact gate: 2x" << split.test.size()
              << " test samples identical to offline inference\n";

    // ---- Gate 2: latency ladder (1-reactor rows only) ------------------
    if (reactors == 1) {
      for (const double base_rate : {2000.0, 8000.0, 20000.0}) {
        const double rate = base_rate / slow;
        LoadGenConfig load;
        load.port = server.port();
        load.rate = rate;
        load.total_requests = static_cast<std::size_t>(rate / 4.0);  // ~250ms each
        load.samples = &samples;
        load.verify[1] = &design_a;
        const LoadGenReport report = run_load(load);
        if (!report.ok()) {
          return fail(cell + "rate " + std::to_string(rate) +
                      ": sent=" + std::to_string(report.sent) +
                      " received=" + std::to_string(report.received) +
                      " mismatches=" + std::to_string(report.mismatches));
        }
        RateRow row;
        row.offered_rps = report.offered_rps;
        row.achieved_rps = report.achieved_rps;
        row.p50_us = report.p50_us;
        row.p99_us = report.p99_us;
        row.mean_us = report.mean_us;
        row.requests = report.sent;
        row.received = report.received;
        latency_rows.push_back(row);
        std::cout << cell << "rate " << rate << " rps: achieved "
                  << report.achieved_rps << " rps, p50 " << report.p50_us
                  << "us, p99 " << report.p99_us << "us (" << report.received
                  << "/" << report.sent << " verified)\n";
      }
    }

    // ---- Gate 3: concurrent per-model hot-swap storms ------------------
    // Both models take open-loop load at once; each loadgen issues two
    // swaps of ITS model mid-run and verifies every response bit-exactly
    // against the design its version tag names.  Alpha runs protocol v1
    // throughout (legacy clients keep working mid-swap); beta runs v2.
    const std::size_t swap_requests = 3000 / static_cast<std::size_t>(slow);
    LoadGenConfig load_a;
    load_a.port = server.port();
    load_a.rate = 6000.0 / slow;
    load_a.total_requests = swap_requests;
    load_a.samples = &samples;
    load_a.swaps[swap_requests / 4] = path_a_alt;      // -> version 2
    load_a.swaps[swap_requests * 5 / 8] = path_a;      // -> version 3
    load_a.verify[1] = &design_a;
    load_a.verify[2] = &design_a_alt;
    load_a.verify[3] = &design_a;

    LoadGenConfig load_b = load_a;
    load_b.model_name = "beta";
    load_b.swaps.clear();
    load_b.swaps[swap_requests / 4] = path_b_alt;      // -> version 2
    load_b.swaps[swap_requests * 5 / 8] = path_b;      // -> version 3
    load_b.verify.clear();
    load_b.verify[1] = &design_b;
    load_b.verify[2] = &design_b_alt;
    load_b.verify[3] = &design_b;

    LoadGenReport report_a;
    LoadGenReport report_b;
    std::thread gen_a([&] { report_a = run_load(load_a); });
    std::thread gen_b([&] { report_b = run_load(load_b); });
    gen_a.join();
    gen_b.join();
    if (!report_a.ok()) {
      return fail(cell + "alpha swap storm: received=" +
                  std::to_string(report_a.received) + "/" +
                  std::to_string(report_a.sent) + " mismatches=" +
                  std::to_string(report_a.mismatches) + " unknown=" +
                  std::to_string(report_a.unknown_version) + " swap_failures=" +
                  std::to_string(report_a.swap_failures));
    }
    if (!report_b.ok()) {
      return fail(cell + "beta swap storm: received=" +
                  std::to_string(report_b.received) + "/" +
                  std::to_string(report_b.sent) + " mismatches=" +
                  std::to_string(report_b.mismatches) + " unknown=" +
                  std::to_string(report_b.unknown_version) + " swap_failures=" +
                  std::to_string(report_b.swap_failures));
    }
    if (report_a.responses_by_version.size() < 2 ||
        report_b.responses_by_version.size() < 2) {
      return fail(cell + "a swap storm never served a swapped design");
    }
    std::cout << cell << "hot-swap under load: alpha " << report_a.received << "/"
              << report_a.sent << " across " << report_a.responses_by_version.size()
              << " versions, beta " << report_b.received << "/" << report_b.sent
              << " across " << report_b.responses_by_version.size() << " versions\n";

    // Swap isolation: each model ended at version 3 with exactly its own
    // two swaps on its ledger.
    const MetricsSnapshot stats = server.stats();
    if (stats.models.size() != 2) return fail(cell + "expected 2 registry entries");
    if (stats.models[0].version != 3 || stats.models[1].version != 3) {
      return fail(cell + "per-model versions after storms: alpha=" +
                  std::to_string(stats.models[0].version) + " beta=" +
                  std::to_string(stats.models[1].version) + " (want 3 and 3)");
    }
    if (stats.models[0].swaps_ok != 2 || stats.models[1].swaps_ok != 2 ||
        stats.swaps_failed != 0) {
      return fail(cell + "per-model swap ledgers wrong");
    }

    // ---- Gate 4: the server's own accounting ---------------------------
    std::uint64_t hist_batches = 0;
    std::uint64_t hist_responses = 0;
    for (std::size_t s = 1; s < stats.batch_size_hist.size(); ++s) {
      hist_batches += stats.batch_size_hist[s];
      hist_responses += stats.batch_size_hist[s] * s;
    }
    if (hist_batches != stats.batches_total || hist_responses != stats.responses_total) {
      return fail(cell + "batch histogram does not account for every response");
    }
    if (stats.requests_by_reactor.size() != reactors) {
      return fail(cell + "requests_by_reactor has wrong width");
    }
    std::uint64_t by_reactor = 0;
    for (const std::uint64_t n : stats.requests_by_reactor) by_reactor += n;
    if (by_reactor != stats.requests_total) {
      return fail(cell + "per-reactor admissions do not sum to requests_total");
    }
    if (stats.models[0].responses + stats.models[1].responses + stats.predict_errors !=
        stats.responses_total) {
      return fail(cell + "per-model responses do not sum to responses_total");
    }
    if (stats.dropped_responses != 0 || stats.predict_errors != 0 ||
        stats.protocol_errors != 0 || stats.unknown_model != 0) {
      return fail(cell + "server reported errors during a clean run");
    }
    std::cout << cell << "server accounting: " << stats.responses_total
              << " responses in " << stats.batches_total << " batches, mean batch "
              << stats.mean_batch_size() << ", admissions by reactor sum "
              << by_reactor << "\n";

    server.stop();

    ScaleRow srow;
    srow.reactors = reactors;
    srow.offered_rps = report_a.offered_rps + report_b.offered_rps;
    srow.achieved_rps = report_a.achieved_rps + report_b.achieved_rps;
    srow.p99_us = std::max(report_a.p99_us, report_b.p99_us);
    srow.requests = report_a.sent + report_b.sent;
    srow.received = report_a.received + report_b.received;
    srow.swaps = 4;
    srow.versions_alpha = report_a.responses_by_version.size();
    srow.versions_beta = report_b.responses_by_version.size();
    scale_rows.push_back(srow);
  }

  std::remove(path_a.c_str());
  std::remove(path_a_alt.c_str());
  std::remove(path_b.c_str());
  std::remove(path_b_alt.c_str());

  // ---- BENCH_serve.json (schema v2) -------------------------------------
  std::ofstream json("BENCH_serve.json");
  if (!json) return fail("cannot write BENCH_serve.json");
  json << "[\n";
  for (const RateRow& row : latency_rows) {
    json << "  {\"bench\": \"serve_latency\", \"reactors\": 1, \"offered_rps\": "
         << format_double_roundtrip(row.offered_rps) << ", \"achieved_rps\": "
         << format_double_roundtrip(row.achieved_rps) << ", \"p50_us\": "
         << format_double_roundtrip(row.p50_us) << ", \"p99_us\": "
         << format_double_roundtrip(row.p99_us) << ", \"mean_us\": "
         << format_double_roundtrip(row.mean_us) << ", \"requests\": " << row.requests
         << ", \"received\": " << row.received << ", \"bit_exact\": true"
         << ", \"worker_threads\": " << config.worker_threads
         << ", \"batch_max\": " << config.batch_max
         << ", \"batch_deadline_us\": " << config.batch_deadline_us
         << ", \"machine_cores\": " << bench::machine_cores()
         << ", \"isa\": \"" << bench::machine_isa()
         << "\", \"sanitizer\": \"" << pnm::build_info::sanitizer_name() << "\"},\n";
  }
  for (std::size_t i = 0; i < scale_rows.size(); ++i) {
    const ScaleRow& row = scale_rows[i];
    json << "  {\"bench\": \"serve_scale\", \"reactors\": " << row.reactors
         << ", \"models\": 2, \"offered_rps\": "
         << format_double_roundtrip(row.offered_rps) << ", \"achieved_rps\": "
         << format_double_roundtrip(row.achieved_rps) << ", \"p99_us\": "
         << format_double_roundtrip(row.p99_us) << ", \"requests\": " << row.requests
         << ", \"received\": " << row.received << ", \"swaps\": " << row.swaps
         << ", \"versions_alpha\": " << row.versions_alpha
         << ", \"versions_beta\": " << row.versions_beta
         << ", \"bit_exact\": true, \"swap_isolation\": true"
         << ", \"worker_threads\": " << config.worker_threads
         << ", \"batch_max\": " << config.batch_max
         << ", \"batch_deadline_us\": " << config.batch_deadline_us
         << ", \"machine_cores\": " << bench::machine_cores()
         << ", \"isa\": \"" << bench::machine_isa()
         << "\", \"sanitizer\": \"" << pnm::build_info::sanitizer_name() << "\"}"
         << (i + 1 == scale_rows.size() ? "\n" : ",\n");
  }
  json << "]\n";
  json.close();
  std::cout << "(wrote BENCH_serve.json)\n";
  return 0;
}
