/// Figure 1(b): RedWine standalone minimization fronts.
#include "fig1_runner.hpp"

int main(int argc, char** argv) {
  return pnm::bench::run_fig1("redwine", "b", argc > 1 ? argv[1] : "");
}
