/// Extension bench: sensitivity of the bespoke area/accuracy trade-off to
/// the sensor word width (input quantization).  The paper fixes the input
/// precision and varies only the weights; printed systems, however, pay
/// for every ADC bit, so this sweep shows where input precision stops
/// mattering — and that the figure shapes are stable across it.

#include "common.hpp"
#include "pnm/data/synth.hpp"

int main() {
  using namespace pnm;
  using namespace pnm::bench;

  std::cout << "==============================================================\n";
  std::cout << "Sensitivity: input (sensor word) precision\n";
  std::cout << "==============================================================\n\n";

  TextTable table({"dataset", "input bits", "baseline acc", "baseline area mm^2",
                   "4b-quant acc", "4b-quant gain"});
  for (const auto& dataset : {std::string("redwine"), std::string("seeds")}) {
    for (int input_bits : {2, 3, 4, 6, 8}) {
      FlowConfig config = figure_flow_config(dataset);
      config.input_bits = input_bits;
      MinimizationFlow flow(config);
      flow.prepare();
      const auto& baseline = flow.baseline();
      const auto quant = flow.sweep_quantization(4, 4);
      table.add_row({dataset, std::to_string(input_bits),
                     format_fixed(baseline.accuracy, 3),
                     format_fixed(baseline.area_mm2, 1),
                     format_fixed(quant.front().accuracy, 3),
                     format_factor(baseline.area_mm2 / quant.front().area_mm2)});
    }
    table.add_separator();
  }
  std::cout << table.to_string() << '\n';
  std::cout << "expected shape: area grows ~linearly with input bits; accuracy "
               "saturates around 4-6 bits (the printed-ML default of 4 is on the "
               "knee); the 4-bit weight-quantization gain is stable throughout.\n";
  return 0;
}
