/// \file campaign_bench.cpp
/// \brief Warm-vs-cold campaign benchmark: runs the same tiny two-dataset
///        GA campaign twice against one persistent store directory and
///        records the resume speedup in BENCH_campaign.json.
///
/// The cold run starts from an empty store directory and evaluates every
/// genome; the warm run must serve every evaluation from the store (zero
/// misses) and produce a byte-identical fronts_json.  Exit status is
/// nonzero when either guarantee fails — CI treats that as a red build —
/// so the record in BENCH_campaign.json is always a verified one.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "pnm/core/campaign.hpp"
#include "pnm/util/fileio.hpp"

int main() {
  using namespace pnm;

  CampaignSpec spec;
  spec.datasets = {"seeds", "redwine"};
  spec.seeds = {7};
  spec.base.train.epochs = 20;
  spec.base.finetune_epochs = 5;
  spec.ga.population = 12;
  spec.ga.generations = 6;
  spec.store_dir = "campaign_bench_store";

  // Cold: wipe the store directory so every evaluation is fresh.
  std::error_code ec;
  std::filesystem::remove_all(spec.store_dir, ec);

  const auto time_run = [](const CampaignSpec& s, CampaignResult& out) {
    CampaignRunner runner(s);
    const auto start = std::chrono::steady_clock::now();
    out = runner.run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };

  CampaignResult cold;
  CampaignResult warm;
  const double cold_seconds = time_run(spec, cold);
  const double warm_seconds = time_run(spec, warm);

  const bool fronts_identical = cold.fronts_json() == warm.fronts_json();
  const bool warm_no_misses = warm.total_cache_misses() == 0;
  const bool warm_has_hits = warm.total_cache_hits() > 0;
  const double speedup = warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;

  std::cout << "-- campaign warm-vs-cold (" << spec.datasets.size()
            << " datasets x " << spec.seeds.size() << " seeds, pop "
            << spec.ga.population << ", " << spec.ga.generations << " gens) --\n"
            << "  cold: " << cold_seconds << " s, " << cold.total_cache_misses()
            << " fresh evaluations\n"
            << "  warm: " << warm_seconds << " s, " << warm.total_cache_hits()
            << " hits / " << warm.total_cache_misses() << " misses ("
            << warm.total_store_loaded() << " records preloaded)\n"
            << "  speedup: " << speedup << "x, fronts byte-identical: "
            << (fronts_identical ? "yes" : "NO (BUG)") << '\n';

  std::ofstream json("BENCH_campaign.json");
  if (!json) {
    std::cerr << "error: cannot write BENCH_campaign.json\n";
    return 1;
  }
  json << "[\n  {\"bench\": \"campaign_warm_vs_cold\""
       << ", \"datasets\": " << spec.datasets.size()
       << ", \"seeds\": " << spec.seeds.size()
       << ", \"population\": " << spec.ga.population
       << ", \"generations\": " << spec.ga.generations
       << ", \"cold_seconds\": " << format_double_roundtrip(cold_seconds)
       << ", \"warm_seconds\": " << format_double_roundtrip(warm_seconds)
       << ", \"speedup_warm_vs_cold\": " << format_double_roundtrip(speedup)
       << ", \"cold_misses\": " << cold.total_cache_misses()
       << ", \"warm_hits\": " << warm.total_cache_hits()
       << ", \"warm_misses\": " << warm.total_cache_misses()
       << ", \"warm_store_loaded\": " << warm.total_store_loaded()
       << ", \"warm_hit_rate\": " << format_double_roundtrip(warm.cache_hit_rate())
       << ", \"fronts_identical\": " << (fronts_identical ? "true" : "false")
       << "}\n]\n";
  std::cout << "(wrote BENCH_campaign.json)\n";

  if (!fronts_identical) {
    std::cerr << "FAIL: warm fronts differ from cold fronts\n";
    return 1;
  }
  if (!warm_no_misses || !warm_has_hits) {
    std::cerr << "FAIL: warm run was not served from the store ("
              << warm.total_cache_hits() << " hits, " << warm.total_cache_misses()
              << " misses)\n";
    return 1;
  }
  return 0;
}
