/// Figure 1(d): Seeds standalone minimization fronts.
#include "fig1_runner.hpp"

int main(int argc, char** argv) {
  return pnm::bench::run_fig1("seeds", "d", argc > 1 ? argv[1] : "");
}
