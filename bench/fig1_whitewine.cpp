/// Figure 1(a): WhiteWine standalone minimization fronts.
#include "fig1_runner.hpp"

int main(int argc, char** argv) {
  return pnm::bench::run_fig1("whitewine", "a", argc > 1 ? argv[1] : "");
}
