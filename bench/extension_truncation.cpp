/// Extension bench: precision-scaled accumulation (product-LSB truncation)
/// as a fourth minimization axis.  The stage breakdown of the bespoke
/// baseline shows adder trees, not multipliers, dominating area — the one
/// stage none of the paper's three techniques attacks directly.  This
/// bench sweeps the truncation knob standalone and then lets the GA
/// combine all four axes.

#include "common.hpp"
#include "pnm/data/synth.hpp"

int main() {
  using namespace pnm;
  using namespace pnm::bench;

  std::cout << "==============================================================\n";
  std::cout << "Extension: precision-scaled accumulation (truncation)\n";
  std::cout << "==============================================================\n\n";

  for (const auto& dataset : {std::string("redwine"), std::string("pendigits")}) {
    MinimizationFlow flow(figure_flow_config(dataset));
    flow.prepare();
    print_baseline(flow);
    const auto& baseline = flow.baseline();

    const auto trunc = flow.sweep_truncation({1, 2, 3, 4, 5});
    print_series("standalone truncation (8b weights, t product LSBs dropped)", trunc,
                 baseline);
    report_gain("truncation  ", trunc, baseline);

    // Three-axis GA (paper) vs four-axis GA (with the truncation gene).
    GaConfig ga3;
    ga3.population = 24;
    ga3.generations = 12;
    GaConfig ga4 = ga3;
    ga4.acc_shift_choices = {0, 1, 2, 3, 4};
    auto proxy = flow.proxy_evaluator(/*finetune_epochs=*/2);
    ParallelEvaluator fitness(proxy);
    const auto out3 = flow.run_ga(fitness, ga3);
    const auto out4 = flow.run_ga(fitness, ga4);
    const auto g3 = best_area_gain_at_loss(out3.front, baseline.accuracy,
                                           baseline.area_mm2, 0.05);
    const auto g4 = best_area_gain_at_loss(out4.front, baseline.accuracy,
                                           baseline.area_mm2, 0.05);
    std::cout << "combined GA @5% loss: three axes " << format_gain(g3)
              << "  |  + truncation gene " << format_gain(g4)
              << (gain_or_baseline(g4) >= gain_or_baseline(g3)
                      ? "  [truncation helps or ties]"
                      : "  [no benefit here]")
              << "\n\n";
  }
  std::cout << "expected shape: t=1..2 is nearly free in accuracy while cutting "
               "the (dominant) accumulate stage; the four-axis GA at least "
               "matches the paper's three-axis search.\n";
  return 0;
}
