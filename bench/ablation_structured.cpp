/// Extension bench (paper §II-B): structured vs unstructured pruning.
/// The paper argues bespoke circuits should use *unstructured* pruning —
/// it typically keeps more accuracy at matched compression, and the
/// hardware removes pruned multipliers for free either way.  This bench
/// measures both at matched area-reduction levels.

#include <cmath>

#include "common.hpp"
#include "pnm/core/prune.hpp"
#include "pnm/core/quantize.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/hw/bespoke.hpp"
#include "pnm/nn/metrics.hpp"

int main() {
  using namespace pnm;
  using namespace pnm::bench;

  std::cout << "==============================================================\n";
  std::cout << "Ablation: structured (neuron) vs unstructured (connection) "
               "pruning\n";
  std::cout << "==============================================================\n\n";

  TextTable table({"dataset", "level", "unstructured acc", "unstr area gain",
                   "structured acc", "struct area gain"});
  for (const auto& dataset : paper_dataset_names()) {
    FlowConfig config = figure_flow_config(dataset);
    MinimizationFlow flow(config);
    flow.prepare();
    const auto& baseline = flow.baseline();
    const auto spec =
        QuantSpec::uniform(flow.float_model().layer_count(),
                           config.baseline_weight_bits, config.input_bits);

    for (double level : {0.25, 0.5}) {
      // Unstructured at `level` sparsity, fine-tuned with the mask held.
      Genome genome;
      const std::size_t n_layers = flow.float_model().layer_count();
      genome.weight_bits.assign(n_layers, config.baseline_weight_bits);
      genome.sparsity_pct.assign(n_layers,
                                 static_cast<int>(std::llround(level * 100)));
      genome.clusters.assign(n_layers, 0);
      const DesignPoint unstructured =
          flow.evaluate_genome(genome, config.finetune_epochs, true, true);

      // Structured: drop the same fraction of hidden neurons, fine-tune.
      Mlp pruned = structured_prune(flow.float_model(), level);
      TrainConfig ft = config.train;
      ft.epochs = config.finetune_epochs;
      ft.lr = config.train.lr * 0.3;
      Trainer trainer(ft);
      trainer.set_weight_view(make_qat_view(spec));
      Rng rng(config.seed + 17);
      trainer.fit(pruned, flow.data().train, rng);
      const QuantizedMlp q = QuantizedMlp::from_float(pruned, spec);
      hw::BespokeOptions unshared;
      unshared.share_products = false;
      const hw::BespokeCircuit circuit(q, unshared);
      const double s_acc = q.accuracy(flow.data().test);
      const double s_area = circuit.area_mm2(flow.tech());

      table.add_row({dataset, format_fixed(level * 100, 0) + "%",
                     format_fixed(unstructured.accuracy, 3),
                     format_factor(baseline.area_mm2 / unstructured.area_mm2),
                     format_fixed(s_acc, 3),
                     format_factor(baseline.area_mm2 / s_area)});
    }
    table.add_separator();
  }
  std::cout << table.to_string() << '\n';
  std::cout << "expected shape: at matched pruning level, unstructured keeps more "
               "accuracy (the paper's reason for choosing it), while structured "
               "removes more area (whole adder trees disappear).\n";
  return 0;
}
