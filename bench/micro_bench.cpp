/// Google-benchmark microbenchmarks of the substrate operations that
/// dominate the reproduction's runtime: training steps, integer
/// inference, netlist generation, gate-level simulation, the area proxy,
/// and one full GA candidate evaluation — plus a batch-evaluation
/// throughput measurement (serial vs parallel, proxy vs netlist) that
/// writes BENCH_eval.json to track the evaluation-layer perf trajectory.

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>

#include "pnm/core/dense_reference.hpp"
#include "pnm/core/eval.hpp"
#include "pnm/core/flow.hpp"
#include "pnm/core/infer_simd.hpp"
#include "pnm/core/quantize.hpp"
#include "pnm/nn/dense_simd.hpp"
#include "pnm/util/build_info.hpp"
#include "pnm/data/scaler.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/hw/bespoke.hpp"
#include "pnm/hw/proxy.hpp"
#include "pnm/nn/trainer.hpp"
#include "pnm/util/bits.hpp"
#include "pnm/util/rng.hpp"
#include "pnm/util/thread_pool.hpp"

namespace {

using namespace pnm;

struct Fixture {
  Dataset data;
  DataSplit split;
  Mlp model;
  QuantizedMlp qmodel;

  static const Fixture& get() {
    static const Fixture f = [] {
      Fixture fx;
      fx.data = make_seeds(1);
      Rng rng(2);
      fx.split = stratified_split(fx.data, 0.7, 0.0, 0.3, rng);
      MinMaxScaler scaler;
      scale_split(fx.split, scaler);
      fx.model = Mlp({7, 4, 3}, rng);
      TrainConfig tc;
      tc.epochs = 20;
      Trainer(tc).fit(fx.model, fx.split.train, rng);
      fx.qmodel = QuantizedMlp::from_float(fx.model, QuantSpec::uniform(2, 4, 4));
      return fx;
    }();
    return f;
  }
};

void BM_TrainEpoch(benchmark::State& state) {
  const auto& fx = Fixture::get();
  Mlp model = fx.model;
  TrainConfig tc;
  tc.epochs = 1;
  Rng rng(3);
  for (auto _ : state) {
    Trainer trainer(tc);
    trainer.fit(model, fx.split.train, rng);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.split.train.size()));
}
BENCHMARK(BM_TrainEpoch);

void BM_FloatInference(benchmark::State& state) {
  const auto& fx = Fixture::get();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.model.predict(fx.split.test.x[i % fx.split.test.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FloatInference);

void BM_IntegerInference(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto xq = quantize_input(fx.split.test.x[0], 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.qmodel.predict_quantized(xq));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IntegerInference);

void BM_IntegerInferenceScratch(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto xq = quantize_input(fx.split.test.x[0], 4);
  InferScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.qmodel.predict_quantized_into(xq, scratch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IntegerInferenceScratch);

void BM_BespokeGeneration(benchmark::State& state) {
  const auto& fx = Fixture::get();
  for (auto _ : state) {
    hw::BespokeCircuit circuit(fx.qmodel);
    benchmark::DoNotOptimize(circuit.netlist().gate_count());
  }
}
BENCHMARK(BM_BespokeGeneration);

void BM_GateLevelSimulation(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const hw::BespokeCircuit circuit(fx.qmodel);
  const auto xq = quantize_input(fx.split.test.x[0], 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.predict(xq));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GateLevelSimulation);

void BM_AreaProxy(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto& tech = hw::TechLibrary::egt();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::estimate_area_mm2(fx.qmodel, tech));
  }
}
BENCHMARK(BM_AreaProxy);

void BM_ExactArea(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto& tech = hw::TechLibrary::egt();
  for (auto _ : state) {
    hw::BespokeCircuit circuit(fx.qmodel);
    benchmark::DoNotOptimize(circuit.area_mm2(tech));
  }
}
BENCHMARK(BM_ExactArea);

MinimizationFlow& bench_flow() {
  static MinimizationFlow flow = [] {
    FlowConfig config;
    config.dataset_name = "seeds";
    config.train.epochs = 20;
    MinimizationFlow f(config);
    f.prepare();
    return f;
  }();
  return flow;
}

void BM_GaCandidateEvaluation(benchmark::State& state) {
  auto& flow = bench_flow();
  Genome genome;
  genome.weight_bits = {4, 4};
  genome.sparsity_pct = {30, 30};
  genome.clusters = {3, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flow.evaluate_genome(genome, 2, /*exact_area=*/false, /*use_test_set=*/false));
  }
}
BENCHMARK(BM_GaCandidateEvaluation);

// ---- Batch-evaluation throughput (BENCH_eval.json) ----------------------
// A GA-generation-sized batch of distinct genomes through each cost
// backend, serial vs thread-parallel.  Parallel results are bit-identical
// to serial (per-genome RNG streams), so the speedup column is a pure
// throughput number, not a quality trade.

std::vector<Genome> batch_genomes(std::size_t n) {
  Rng rng(1234);
  const std::vector<int> sparsity_choices = {0, 10, 20, 30, 40, 50, 60, 70};
  const std::vector<int> cluster_choices = {0, 2, 3, 4, 6, 8};
  std::vector<Genome> genomes;
  genomes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Genome g;
    for (int layer = 0; layer < 2; ++layer) {
      g.weight_bits.push_back(rng.uniform_int(2, 8));
      g.sparsity_pct.push_back(
          sparsity_choices[rng.uniform_int(sparsity_choices.size())]);
      g.clusters.push_back(cluster_choices[rng.uniform_int(cluster_choices.size())]);
    }
    genomes.push_back(std::move(g));
  }
  return genomes;
}

struct EvalBenchRecord {
  std::string backend;
  std::string mode;
  std::size_t threads = 1;
  std::size_t machine_cores = 1;
  std::size_t genomes = 0;
  double seconds = 0.0;
  double genomes_per_sec = 0.0;
  double speedup_vs_serial = 1.0;
};

double timed_batch(Evaluator& evaluator, const std::vector<Genome>& genomes) {
  const auto start = std::chrono::steady_clock::now();
  const auto points = evaluator.evaluate_batch(genomes);
  const auto stop = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(points.size());
  return std::chrono::duration<double>(stop - start).count();
}

void run_eval_throughput_bench(const std::string& json_path) {
  auto& flow = bench_flow();
  // The parallel mode must actually fan out: hardware_concurrency workers,
  // recorded alongside the machine's core count so speedup_vs_serial is
  // interpretable (a 1.0x "speedup" on a 1-core runner is expected, not a
  // regression).
  const std::size_t machine_cores = ThreadPool::default_thread_count();
  const std::size_t threads = machine_cores;
  const std::vector<Genome> genomes = batch_genomes(24);

  ProxyEvaluator proxy = flow.proxy_evaluator(/*finetune_epochs=*/2);
  NetlistEvaluator netlist = flow.netlist_evaluator(/*finetune_epochs=*/2);

  std::vector<EvalBenchRecord> records;
  auto measure = [&](const std::string& backend, Evaluator& serial_eval) {
    // Warm-up evaluation outside the timed region (first-touch effects).
    serial_eval.evaluate(genomes.front());

    EvalBenchRecord serial;
    serial.backend = backend;
    serial.mode = "serial";
    serial.machine_cores = machine_cores;
    serial.genomes = genomes.size();
    serial.seconds = timed_batch(serial_eval, genomes);
    serial.genomes_per_sec = static_cast<double>(serial.genomes) / serial.seconds;
    records.push_back(serial);

    ParallelEvaluator parallel_eval(serial_eval, threads);
    EvalBenchRecord parallel;
    parallel.backend = backend;
    parallel.mode = "parallel";
    parallel.threads = parallel_eval.threads();
    parallel.machine_cores = machine_cores;
    parallel.genomes = genomes.size();
    parallel.seconds = timed_batch(parallel_eval, genomes);
    parallel.genomes_per_sec = static_cast<double>(parallel.genomes) / parallel.seconds;
    parallel.speedup_vs_serial = serial.seconds / parallel.seconds;
    records.push_back(parallel);
  };
  measure("proxy", proxy);
  measure("netlist", netlist);

  std::cout << "\n-- batch evaluation throughput (" << genomes.size()
            << " genomes, " << threads << " worker threads, " << machine_cores
            << " machine cores) --\n";
  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot write " << json_path << '\n';
    return;
  }
  json << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const EvalBenchRecord& r = records[i];
    std::cout << "  " << r.backend << '/' << r.mode << ": " << r.genomes_per_sec
              << " genomes/sec";
    if (r.mode == "parallel") {
      std::cout << " (speedup vs serial " << r.speedup_vs_serial << "x on "
                << r.threads << " threads)";
    }
    std::cout << '\n';
    json << "  {\"bench\": \"eval_batch\", \"backend\": \"" << r.backend
         << "\", \"mode\": \"" << r.mode << "\", \"threads\": " << r.threads
         << ", \"machine_cores\": " << r.machine_cores
         << ", \"genomes\": " << r.genomes << ", \"seconds\": " << r.seconds
         << ", \"genomes_per_sec\": " << r.genomes_per_sec
         << ", \"speedup_vs_serial\": " << r.speedup_vs_serial << "}"
         << (i + 1 < records.size() ? "," : "") << '\n';
  }
  json << "]\n";
  std::cout << "(wrote " << json_path << ")\n";
}

// ---- Inference throughput (BENCH_infer.json) -----------------------------
// The quantized-inference engine is the fitness loop's hot path: every
// candidate's accuracy is one streaming pass over the reporting split.
// This bench realizes the netlist-backend eval batch's genomes once, then
// measures genome-scoring throughput five ways:
//   * seed_dense            — the seed implementation's algorithm,
//                             faithfully reconstructed: dense [out][in]
//                             weight rows, the dataset re-quantized
//                             sample-by-sample for every genome, fresh
//                             scratch vectors per sample;
//   * engine_single_sample  — the PR-3 flat-CSR engine: dataset
//                             pre-quantized once, one sample per layer
//                             pass, reused InferScratch;
//   * engine_blocked_scalar — the multi-sample engine on the scalar
//                             kernel: sample-blocked SoA layout, 8
//                             samples accumulated per weight visit;
//   * engine_blocked_simd   — the same blocked pass on the runtime-
//                             dispatched native kernel (AVX2/NEON);
//                             present only when a native ISA is active;
//   * engine_parallel       — the blocked engine (active ISA) fanned
//                             over hardware_concurrency threads.
// Every mode's per-genome accuracies must agree bit-exactly with the
// seed path (the engines are bit-exact by construction), and the blocked
// modes must actually be faster than single-sample on untimed-scaled
// builds — the bench fails (CI-red) on any violation.
//
// A second record family ("finetune_math") times the GA's fine-tuning
// stage (NetlistEvaluator::realize = quantize + STE fine-tune) with the
// libm softmax reference vs the vectorized fast-exp path, and gates on
// front quality: mean realized-model accuracy under fast math must match
// libm within a declared tolerance (the trajectories are not
// bit-identical; the quality is).

struct InferBenchRecord {
  std::string mode;
  std::string isa;            ///< kernel the row dispatched to
  std::size_t sample_block = 1;
  std::size_t threads = 1;
  std::size_t machine_cores = 1;
  std::size_t genomes = 0;
  std::size_t samples = 0;  ///< reporting-split size (per genome pass)
  double seconds = 0.0;
  double genomes_per_sec = 0.0;
  double samples_per_sec = 0.0;
  double speedup_vs_seed_serial = 1.0;
  double speedup_vs_single_sample = 1.0;
};

bool run_infer_throughput_bench(const std::string& json_path) {
  auto& flow = bench_flow();
  const std::size_t machine_cores = ThreadPool::default_thread_count();
  const std::vector<Genome> genomes = batch_genomes(24);
  const Dataset& val = flow.data().val;
  const QuantizedDataset qval = quantize_dataset(val, flow.config().input_bits);
  // The PR-3 engine measured honestly: same data, no blocked layout, so
  // accuracy() takes the single-sample path.
  QuantizedDataset qval_single = qval;
  qval_single.xb.clear();

  const simd::Isa isa = simd::active_isa();
  const bool native_isa = isa != simd::Isa::kScalar;
  // Speed gates only bind on untimed-scaled builds (sanitizers distort
  // kernel-relative timings); correctness gates always bind.
  const bool timed_build = pnm::build_info::timing_multiplier() == 1;

  // Realize the eval batch's integer models once (untimed): this bench
  // isolates the inference stage the tentpole rebuilt, not the training
  // pipeline around it.
  NetlistEvaluator netlist = flow.netlist_evaluator(/*finetune_epochs=*/2);
  std::vector<QuantizedMlp> models;
  models.reserve(genomes.size());
  for (const Genome& g : genomes) models.push_back(netlist.realize(g));
  std::vector<DenseReferenceModel> seed_models;
  seed_models.reserve(models.size());
  for (const QuantizedMlp& q : models) seed_models.emplace_back(q);

  // Bit-exactness gate: every per-sample prediction of the flat engine
  // must equal the seed dense implementation's.
  bool bit_exact = true;
  {
    InferScratch scratch;
    for (std::size_t m = 0; m < models.size(); ++m) {
      for (std::size_t i = 0; i < val.size(); ++i) {
        const std::size_t engine_pred =
            models[m].predict_quantized_into(qval.sample(i), scratch);
        if (engine_pred != seed_models[m].predict(val.x[i])) bit_exact = false;
      }
    }
  }

  // Several passes so per-mode wall time is well above timer resolution.
  constexpr int kPasses = 150;
  const auto timed_passes = [&](auto&& body) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int p = 0; p < kPasses; ++p) body();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / kPasses;
  };

  std::vector<double> acc_seed(models.size()), acc_single(models.size()),
      acc_bscalar(models.size()), acc_bsimd(models.size()),
      acc_parallel(models.size());

  const double sec_seed = timed_passes([&] {
    for (std::size_t m = 0; m < models.size(); ++m) {
      acc_seed[m] = seed_models[m].accuracy(val);
    }
  });
  const double sec_single = timed_passes([&] {
    for (std::size_t m = 0; m < models.size(); ++m) {
      acc_single[m] = models[m].accuracy(qval_single);
    }
  });
  const double sec_bscalar = timed_passes([&] {
    for (std::size_t m = 0; m < models.size(); ++m) {
      acc_bscalar[m] = models[m].accuracy_blocked(qval, simd::Isa::kScalar);
    }
  });
  double sec_bsimd = 0.0;
  if (native_isa) {
    sec_bsimd = timed_passes([&] {
      for (std::size_t m = 0; m < models.size(); ++m) {
        acc_bsimd[m] = models[m].accuracy_blocked(qval, isa);
      }
    });
  } else {
    acc_bsimd = acc_bscalar;  // no native kernel: nothing extra to compare
  }
  ThreadPool pool(machine_cores);
  const double sec_parallel = timed_passes([&] {
    pool.parallel_for(models.size(), [&](std::size_t m) {
      acc_parallel[m] = models[m].accuracy(qval);
    });
  });

  // Every engine and the seed must score every genome identically.
  bool modes_agree = true;
  for (std::size_t m = 0; m < models.size(); ++m) {
    if (acc_single[m] != acc_seed[m] || acc_bscalar[m] != acc_seed[m] ||
        acc_bsimd[m] != acc_seed[m] || acc_parallel[m] != acc_seed[m]) {
      modes_agree = false;
    }
  }

  const auto record = [&](const std::string& mode, const char* row_isa,
                          std::size_t sample_block, std::size_t threads,
                          double seconds) {
    InferBenchRecord r;
    r.mode = mode;
    r.isa = row_isa;
    r.sample_block = sample_block;
    r.threads = threads;
    r.machine_cores = machine_cores;
    r.genomes = models.size();
    r.samples = val.size();
    r.seconds = seconds;
    r.genomes_per_sec = static_cast<double>(r.genomes) / seconds;
    r.samples_per_sec =
        static_cast<double>(r.genomes * r.samples) / seconds;
    r.speedup_vs_seed_serial = sec_seed / seconds;
    r.speedup_vs_single_sample = sec_single / seconds;
    return r;
  };
  const char* scalar_name = simd::isa_name(simd::Isa::kScalar);
  const char* active_name = simd::isa_name(isa);
  std::vector<InferBenchRecord> records = {
      record("seed_dense", scalar_name, 1, 1, sec_seed),
      record("engine_single_sample", scalar_name, 1, 1, sec_single),
      record("engine_blocked_scalar", scalar_name, simd::kSampleBlock, 1, sec_bscalar),
  };
  if (native_isa) {
    records.push_back(
        record("engine_blocked_simd", active_name, simd::kSampleBlock, 1, sec_bsimd));
  }
  records.push_back(record("engine_parallel", active_name, simd::kSampleBlock,
                           machine_cores, sec_parallel));

  // Perf-regression gates on the tentpole's claims (modest floors; the
  // snapshots record the actual factors).  Blocked-scalar must not lose
  // to single-sample, and the native kernel must add a real multiplier.
  bool speed_ok = true;
  if (timed_build) {
    if (sec_bscalar > sec_single * 1.05) {
      std::cerr << "FAIL: blocked-scalar slower than single-sample ("
                << sec_single / sec_bscalar << "x)\n";
      speed_ok = false;
    }
    if (native_isa && sec_bsimd * 1.5 > sec_single) {
      std::cerr << "FAIL: " << active_name << " blocked speedup "
                << sec_single / sec_bsimd << "x vs single-sample, need >= 1.5x\n";
      speed_ok = false;
    }
  }

  std::cout << "\n-- inference throughput on the netlist-backend eval batch ("
            << models.size() << " genomes x " << val.size() << " samples, "
            << machine_cores << " machine cores, active isa " << active_name
            << ") --\n";
  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot write " << json_path << '\n';
    return false;
  }
  json << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const InferBenchRecord& r = records[i];
    std::cout << "  " << r.mode << " [" << r.isa << "]: " << r.genomes_per_sec
              << " genomes/sec, " << r.samples_per_sec << " samples/sec ("
              << r.speedup_vs_seed_serial << "x vs seed, "
              << r.speedup_vs_single_sample << "x vs single-sample)\n";
    json << "  {\"bench\": \"infer_throughput\", \"mode\": \"" << r.mode
         << "\", \"isa\": \"" << r.isa
         << "\", \"sample_block\": " << r.sample_block
         << ", \"threads\": " << r.threads
         << ", \"machine_cores\": " << r.machine_cores
         << ", \"genomes\": " << r.genomes << ", \"samples\": " << r.samples
         << ", \"seconds\": " << r.seconds
         << ", \"genomes_per_sec\": " << r.genomes_per_sec
         << ", \"samples_per_sec\": " << r.samples_per_sec
         << ", \"speedup_vs_seed_serial\": " << r.speedup_vs_seed_serial
         << ", \"speedup_vs_single_sample\": " << r.speedup_vs_single_sample
         << ", \"bit_exact\": " << (bit_exact ? "true" : "false")
         << ", \"modes_agree\": " << (modes_agree ? "true" : "false") << "},\n";
  }

  // ---- Fine-tuning wall time: scalar+libm baseline vs vectorized -------
  // "scalar_libm" reconstructs the pre-SIMD trainer (per-sample backprop,
  // scalar dense kernels, libm softmax); "simd_fast" is the shipped
  // default (sample-blocked backprop, active-ISA dense kernels, batch
  // fast-exp softmax).  Both fine-tune the same genome batch through
  // NetlistEvaluator::realize; quality is gated, speed is gated on
  // untimed-scaled native-ISA builds.
  constexpr int kFtPasses = 3;
  constexpr double kFrontQualityTolerance = 0.05;
  std::vector<double> ft_acc_base, ft_acc_simd;
  const auto timed_realizes = [&](bool vectorized, std::vector<double>& accs) {
    const bool saved = softmax_fast_math();
    set_softmax_fast_math(vectorized);
    set_blocked_backprop(vectorized);
    simd::force_dense_kernels(vectorized ? isa : simd::Isa::kScalar);
    accs.clear();
    const auto t0 = std::chrono::steady_clock::now();
    for (int p = 0; p < kFtPasses; ++p) {
      for (const Genome& g : genomes) {
        const QuantizedMlp q = netlist.realize(g);
        if (p == 0) accs.push_back(q.accuracy(qval));
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    set_softmax_fast_math(saved);
    set_blocked_backprop(true);
    simd::reset_dense_kernels();
    return std::chrono::duration<double>(t1 - t0).count() / kFtPasses;
  };
  const double sec_ft_base = timed_realizes(false, ft_acc_base);
  const double sec_ft_simd = timed_realizes(true, ft_acc_simd);
  const double ft_speedup = sec_ft_base / sec_ft_simd;

  double mean_base = 0.0, mean_simd = 0.0;
  for (double a : ft_acc_base) mean_base += a;
  for (double a : ft_acc_simd) mean_simd += a;
  mean_base /= static_cast<double>(ft_acc_base.size());
  mean_simd /= static_cast<double>(ft_acc_simd.size());
  const double ft_quality_delta = mean_simd - mean_base;
  // Front-quality gate: vectorized fine-tuning must land at the same mean
  // realized accuracy (declared accuracy-neutral, not bit-identical —
  // fast softmax perturbs trajectories; the dense kernels do not).
  const bool ft_quality_ok = std::abs(ft_quality_delta) <= kFrontQualityTolerance;
  bool ft_speed_ok = true;
  if (timed_build && native_isa && sec_ft_simd * 1.2 > sec_ft_base) {
    std::cerr << "FAIL: vectorized fine-tuning speedup " << ft_speedup
              << "x vs scalar+libm, need >= 1.2x\n";
    ft_speed_ok = false;
  }

  std::cout << "  finetune_math: scalar_libm " << sec_ft_base << "s, simd_fast "
            << sec_ft_simd << "s per pass (" << ft_speedup
            << "x), mean realized accuracy " << mean_base << " -> " << mean_simd
            << " (delta " << ft_quality_delta << ")\n";
  const auto ft_row = [&](const char* mode, const char* row_isa, double seconds,
                          double mean_acc) {
    json << "  {\"bench\": \"finetune_math\", \"mode\": \"" << mode
         << "\", \"isa\": \"" << row_isa
         << "\", \"machine_cores\": " << machine_cores
         << ", \"genomes\": " << genomes.size()
         << ", \"finetune_epochs\": 2, \"seconds\": " << seconds
         << ", \"speedup_vs_baseline\": " << sec_ft_base / seconds
         << ", \"mean_realized_accuracy\": " << mean_acc
         << ", \"quality_delta_vs_baseline\": " << ft_quality_delta
         << ", \"quality_ok\": " << (ft_quality_ok ? "true" : "false") << "}";
  };
  ft_row("scalar_libm", scalar_name, sec_ft_base, mean_base);
  json << ",\n";
  ft_row("simd_fast", active_name, sec_ft_simd, mean_simd);
  json << "\n]\n";

  std::cout << "  bit-exact vs seed path: " << (bit_exact ? "yes" : "NO (BUG)")
            << ", all engine accuracies agree: "
            << (modes_agree ? "yes" : "NO (BUG)") << ", front quality: "
            << (ft_quality_ok ? "ok" : "NO (BUG)") << '\n';
  std::cout << "(wrote " << json_path << ")\n";
  return bit_exact && modes_agree && speed_ok && ft_quality_ok && ft_speed_ok;
}

// ---- MCM adder-graph sharing (BENCH_mcm.json) ---------------------------
// The headline-metric bench for hw/mcm.hpp: run the (reduced) Fig. 2 GA
// per dataset, realize every front genome, and regenerate its exact
// bespoke circuit with cross-coefficient adder-graph sharing off vs on.
// Records product-stage adders and exact area before/after, plus a
// gate-level bit-exactness check of the shared circuits against the
// integer golden model.

struct McmBenchRecord {
  std::string dataset;
  std::size_t front_designs = 0;
  std::size_t adders_unshared = 0;
  std::size_t adders_shared = 0;
  double area_unshared = 0.0;
  double area_shared = 0.0;
  bool bit_exact = true;
};

/// Returns false when a hard guarantee is violated (lost bit-exactness,
/// or a shared plan with more adders than the independent chains), so CI
/// fails instead of silently uploading a bad record.
bool run_mcm_sharing_bench(const std::string& json_path) {
  bool ok = true;
  std::vector<McmBenchRecord> records;
  for (const std::string dataset : {"whitewine", "redwine", "pendigits", "seeds"}) {
    FlowConfig config;
    config.dataset_name = dataset;
    config.train.epochs = 30;
    config.finetune_epochs = 5;
    MinimizationFlow flow(config);
    flow.prepare();

    GaConfig ga;
    ga.population = 16;
    ga.generations = 8;
    ProxyEvaluator proxy = flow.proxy_evaluator(/*finetune_epochs=*/2);
    ParallelEvaluator fitness(proxy);
    const auto outcome = flow.run_ga(fitness, ga);

    McmBenchRecord rec;
    rec.dataset = dataset;
    Rng rng(2024);
    for (const auto& member : outcome.raw.front) {
      const QuantizedMlp qmodel =
          flow.realize_genome(member.genome, config.finetune_epochs);
      // Controlled comparison: identical model and options except the
      // sharing knob (share_products on for both so the coefficient set
      // exists to share across).
      hw::BespokeOptions unshared;
      hw::BespokeOptions shared;
      shared.share_subexpressions = true;
      const hw::BespokeCircuit before(qmodel, unshared);
      const hw::BespokeCircuit after(qmodel, shared);
      rec.adders_unshared += before.product_adder_count();
      rec.adders_shared += after.product_adder_count();
      rec.area_unshared += before.area_mm2(flow.tech());
      rec.area_shared += after.area_mm2(flow.tech());
      // Netlist simulation must stay bit-exact with QuantizedMlp.
      const std::int64_t xmax = unsigned_max(config.input_bits);
      for (int trial = 0; trial < 16; ++trial) {
        std::vector<std::int64_t> xq(qmodel.input_size());
        for (auto& v : xq) {
          v = static_cast<std::int64_t>(
              rng.uniform_int(static_cast<std::uint64_t>(xmax) + 1));
        }
        if (after.predict(xq) != qmodel.predict_quantized(xq)) rec.bit_exact = false;
      }
      ++rec.front_designs;
    }
    records.push_back(rec);
  }

  std::cout << "\n-- MCM adder-graph sharing on GA fronts (exact circuits) --\n";
  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot write " << json_path << '\n';
    return false;
  }
  json << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const McmBenchRecord& r = records[i];
    const double adder_red =
        r.adders_unshared > 0
            ? 100.0 * (1.0 - static_cast<double>(r.adders_shared) /
                                 static_cast<double>(r.adders_unshared))
            : 0.0;
    const double area_red =
        r.area_unshared > 0.0 ? 100.0 * (1.0 - r.area_shared / r.area_unshared) : 0.0;
    std::cout << "  " << r.dataset << ": front=" << r.front_designs
              << " product adders " << r.adders_unshared << " -> " << r.adders_shared
              << " (-" << adder_red << "%), area " << r.area_unshared << " -> "
              << r.area_shared << " mm^2 (-" << area_red << "%), bit-exact: "
              << (r.bit_exact ? "yes" : "NO (BUG)") << '\n';
    if (!r.bit_exact || r.adders_shared > r.adders_unshared) {
      ok = false;  // hard guarantees: bit-exactness, adders never grow
    }
    if (r.adders_shared >= r.adders_unshared || r.area_shared >= r.area_unshared) {
      std::cout << "  WARNING: sharing did not strictly reduce adders/area on "
                << r.dataset << '\n';
    }
    json << "  {\"bench\": \"mcm_sharing\", \"dataset\": \"" << r.dataset
         << "\", \"front_designs\": " << r.front_designs
         << ", \"product_adders_unshared\": " << r.adders_unshared
         << ", \"product_adders_shared\": " << r.adders_shared
         << ", \"adder_reduction_pct\": " << adder_red
         << ", \"area_mm2_unshared\": " << r.area_unshared
         << ", \"area_mm2_shared\": " << r.area_shared
         << ", \"area_reduction_pct\": " << area_red
         << ", \"bit_exact\": " << (r.bit_exact ? "true" : "false") << "}"
         << (i + 1 < records.size() ? "," : "") << '\n';
  }
  json << "]\n";
  std::cout << "(wrote " << json_path << ")\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--benchmark_list_tests") {
      list_only = true;
    } else if (arg.rfind("--benchmark_list_tests=", 0) == 0) {
      const std::string value = arg.substr(arg.find('=') + 1);
      list_only = (value != "false" && value != "0");
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!list_only) {
    run_eval_throughput_bench("BENCH_eval.json");
    if (!run_infer_throughput_bench("BENCH_infer.json")) return 1;
    if (!run_mcm_sharing_bench("BENCH_mcm.json")) return 1;
  }
  return 0;
}
