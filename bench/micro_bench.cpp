/// Google-benchmark microbenchmarks of the substrate operations that
/// dominate the reproduction's runtime: training steps, integer
/// inference, netlist generation, gate-level simulation, the area proxy,
/// and one full GA candidate evaluation.

#include <benchmark/benchmark.h>

#include "pnm/core/flow.hpp"
#include "pnm/core/quantize.hpp"
#include "pnm/data/scaler.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/hw/bespoke.hpp"
#include "pnm/hw/proxy.hpp"
#include "pnm/nn/trainer.hpp"

namespace {

using namespace pnm;

struct Fixture {
  Dataset data;
  DataSplit split;
  Mlp model;
  QuantizedMlp qmodel;

  static const Fixture& get() {
    static const Fixture f = [] {
      Fixture fx;
      fx.data = make_seeds(1);
      Rng rng(2);
      fx.split = stratified_split(fx.data, 0.7, 0.0, 0.3, rng);
      MinMaxScaler scaler;
      scale_split(fx.split, scaler);
      fx.model = Mlp({7, 4, 3}, rng);
      TrainConfig tc;
      tc.epochs = 20;
      Trainer(tc).fit(fx.model, fx.split.train, rng);
      fx.qmodel = QuantizedMlp::from_float(fx.model, QuantSpec::uniform(2, 4, 4));
      return fx;
    }();
    return f;
  }
};

void BM_TrainEpoch(benchmark::State& state) {
  const auto& fx = Fixture::get();
  Mlp model = fx.model;
  TrainConfig tc;
  tc.epochs = 1;
  Rng rng(3);
  for (auto _ : state) {
    Trainer trainer(tc);
    trainer.fit(model, fx.split.train, rng);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.split.train.size()));
}
BENCHMARK(BM_TrainEpoch);

void BM_FloatInference(benchmark::State& state) {
  const auto& fx = Fixture::get();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.model.predict(fx.split.test.x[i % fx.split.test.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FloatInference);

void BM_IntegerInference(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto xq = quantize_input(fx.split.test.x[0], 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.qmodel.predict_quantized(xq));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IntegerInference);

void BM_BespokeGeneration(benchmark::State& state) {
  const auto& fx = Fixture::get();
  for (auto _ : state) {
    hw::BespokeCircuit circuit(fx.qmodel);
    benchmark::DoNotOptimize(circuit.netlist().gate_count());
  }
}
BENCHMARK(BM_BespokeGeneration);

void BM_GateLevelSimulation(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const hw::BespokeCircuit circuit(fx.qmodel);
  const auto xq = quantize_input(fx.split.test.x[0], 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.predict(xq));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GateLevelSimulation);

void BM_AreaProxy(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto& tech = hw::TechLibrary::egt();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::estimate_area_mm2(fx.qmodel, tech));
  }
}
BENCHMARK(BM_AreaProxy);

void BM_ExactArea(benchmark::State& state) {
  const auto& fx = Fixture::get();
  const auto& tech = hw::TechLibrary::egt();
  for (auto _ : state) {
    hw::BespokeCircuit circuit(fx.qmodel);
    benchmark::DoNotOptimize(circuit.area_mm2(tech));
  }
}
BENCHMARK(BM_ExactArea);

void BM_GaCandidateEvaluation(benchmark::State& state) {
  static MinimizationFlow flow = [] {
    FlowConfig config;
    config.dataset_name = "seeds";
    config.train.epochs = 20;
    MinimizationFlow f(config);
    f.prepare();
    return f;
  }();
  Genome genome;
  genome.weight_bits = {4, 4};
  genome.sparsity_pct = {30, 30};
  genome.clusters = {3, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flow.evaluate_genome(genome, 2, /*exact_area=*/false, /*use_test_set=*/false));
  }
}
BENCHMARK(BM_GaCandidateEvaluation);

}  // namespace

BENCHMARK_MAIN();
