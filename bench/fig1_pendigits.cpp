/// Figure 1(c): Pendigits standalone minimization fronts.
#include "fig1_runner.hpp"

int main(int argc, char** argv) {
  return pnm::bench::run_fig1("pendigits", "c", argc > 1 ? argv[1] : "");
}
