/// \file shard_bench.cpp
/// \brief Sharded-campaign benchmark and determinism gate: runs the same
///        tiny two-dataset GA campaign once serially and once drained by
///        two real worker *processes* sharing one store directory, and
///        records both wall times in BENCH_shard.json.
///
/// The headline invariant of the cross-process scheduler is measured,
/// not assumed: the two-worker run must produce a merged fronts_json
/// byte-identical to the serial run's, the shared store must contain
/// zero duplicate evaluation records, and the workers' total fresh
/// evaluations must equal the serial run's (a duplicated cell or a
/// claim-protocol hole would show up as extra misses).  Exit status is
/// nonzero when any of these fails — CI treats that as a red build — so
/// the record in BENCH_shard.json is always a verified one.
///
/// Wall-time note: on a single-core container the two-worker time is
/// expected to be *worse* than serial (two processes time-slicing one
/// core); the record exists to track the trajectory on real multi-core
/// hosts, where the cells parallelize.

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "pnm/core/campaign.hpp"
#include "pnm/core/eval_store.hpp"
#include "pnm/util/fileio.hpp"

namespace {

pnm::CampaignSpec bench_spec(const std::string& store_dir) {
  pnm::CampaignSpec spec;
  spec.datasets = {"seeds", "redwine"};
  spec.seeds = {7};
  spec.base.train.epochs = 20;
  spec.base.finetune_epochs = 5;
  spec.ga.population = 12;
  spec.ga.generations = 6;
  spec.store_dir = store_dir;
  return spec;
}

/// Total duplicate records across every eval store in the campaign's
/// store directory.
std::size_t store_duplicates(const std::string& store_dir) {
  std::size_t duplicates = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(store_dir, ec);
  if (ec) return duplicates;
  for (const std::filesystem::directory_entry& entry : it) {
    if (!entry.is_directory(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 10 || name.substr(name.size() - 10) != ".evalstore") continue;
    duplicates += pnm::EvalStore::count_duplicate_records(entry.path().string());
  }
  return duplicates;
}

}  // namespace

int main() {
  using namespace pnm;

  const std::string serial_store = "shard_bench_store_serial";
  const std::string shard_store = "shard_bench_store_2worker";
  std::error_code ec;
  std::filesystem::remove_all(serial_store, ec);
  std::filesystem::remove_all(shard_store, ec);

  // Serial reference: every cell in this process.
  std::string serial_fronts;
  std::size_t serial_misses = 0;
  double serial_seconds = 0.0;
  {
    const auto start = std::chrono::steady_clock::now();
    CampaignResult serial = CampaignRunner(bench_spec(serial_store)).run();
    serial_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    serial_fronts = serial.fronts_json();
    serial_misses = serial.total_cache_misses();
  }
  std::cout << "-- serial: " << serial_seconds << " s, " << serial_misses
            << " fresh evaluations --\n";

  // Two worker processes drain the same campaign into one shared store.
  // Forked before any runner exists in this process, so no thread pool
  // crosses the fork; each child claims cells dynamically (no static
  // shard) to exercise the work-queue path.
  std::fflush(nullptr);
  const auto shard_start = std::chrono::steady_clock::now();
  pid_t children[2] = {0, 0};
  for (std::size_t j = 0; j < 2; ++j) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      CampaignSpec spec = bench_spec(shard_store);
      spec.writer_id = j;  // preferred store segment (probing makes any id safe)
      int status = 0;
      try {
        CampaignRunner worker(std::move(spec));
        worker.run_worker();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "worker %zu: %s\n", j, e.what());
        status = 1;
      }
      std::fflush(nullptr);
      _exit(status);
    }
    children[j] = pid;
  }
  bool worker_failed = false;
  for (pid_t pid : children) {
    int status = 0;
    if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      worker_failed = true;
    }
  }
  const std::optional<CampaignResult> sharded =
      worker_failed ? std::nullopt : collect_campaign(bench_spec(shard_store));
  const double shard_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - shard_start)
          .count();
  if (worker_failed || !sharded) {
    std::cerr << "FAIL: " << (worker_failed ? "a worker process exited abnormally"
                                            : "collect found missing/stale cells")
              << "\n";
    return 1;
  }

  const std::string shard_fronts = sharded->fronts_json();
  const std::size_t shard_misses = sharded->total_cache_misses();
  const std::size_t duplicates = store_duplicates(shard_store);
  const bool fronts_identical = (shard_fronts == serial_fronts);
  const bool no_duplicate_evals = (shard_misses == serial_misses);
  const double speedup = shard_seconds > 0.0 ? serial_seconds / shard_seconds : 0.0;
  const unsigned cores = std::thread::hardware_concurrency();

  std::cout << "-- 2-worker: " << shard_seconds << " s, " << shard_misses
            << " fresh evaluations across both workers --\n"
            << "  fronts byte-identical to serial: "
            << (fronts_identical ? "yes" : "NO (BUG)") << '\n'
            << "  duplicate records in shared store: " << duplicates << '\n'
            << "  speedup vs serial: " << speedup << "x (on " << cores
            << " core(s))\n";

  std::ofstream json("BENCH_shard.json");
  if (!json) {
    std::cerr << "error: cannot write BENCH_shard.json\n";
    return 1;
  }
  json << "[\n  {\"bench\": \"campaign_shard_2worker\""
       << ", \"datasets\": " << sharded->datasets.size()
       << ", \"seeds\": 1"
       << ", \"cells\": " << sharded->runs.size()
       << ", \"workers\": 2"
       << ", \"machine_cores\": " << cores
       << ", \"serial_seconds\": " << format_double_roundtrip(serial_seconds)
       << ", \"two_worker_seconds\": " << format_double_roundtrip(shard_seconds)
       << ", \"speedup_two_worker_vs_serial\": " << format_double_roundtrip(speedup)
       << ", \"serial_misses\": " << serial_misses
       << ", \"two_worker_misses\": " << shard_misses
       << ", \"duplicate_store_records\": " << duplicates
       << ", \"fronts_identical\": " << (fronts_identical ? "true" : "false")
       << "}\n]\n";
  std::cout << "(wrote BENCH_shard.json)\n";

  if (!fronts_identical) {
    std::cerr << "FAIL: 2-worker merged fronts differ from the serial run\n";
    return 1;
  }
  if (duplicates != 0) {
    std::cerr << "FAIL: " << duplicates
              << " duplicate evaluation record(s) in the shared store\n";
    return 1;
  }
  if (!no_duplicate_evals) {
    std::cerr << "FAIL: workers evaluated " << shard_misses
              << " genomes fresh, serial evaluated " << serial_misses
              << " — a cell ran twice or a claim leaked\n";
    return 1;
  }
  return 0;
}
