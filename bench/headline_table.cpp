/// Headline numbers of §III (the text's quantitative claims), as a table:
///
///  * quantization: ~5x average area reduction at <= 5% accuracy loss;
///  * pruning: ~2.8x average; weight clustering: ~3.5x average;
///  * clustering meets the 5% threshold only on RedWine and WhiteWine;
///  * combined (GA): up to 8x (the abstract's headline).
///
/// We report the same statistics over the four synthetic-analog datasets.
/// Absolute factors depend on the dataset realization; the ordering and
/// rough magnitudes are the reproduction target (DESIGN.md §3).

#include "common.hpp"
#include "pnm/data/synth.hpp"

int main() {
  using namespace pnm;
  using namespace pnm::bench;

  std::cout << "==============================================================\n";
  std::cout << "Headline table: max area gain at <=5% accuracy loss\n";
  std::cout << "==============================================================\n\n";

  TextTable table({"dataset", "quant", "prune", "cluster", "combined(GA)",
                   "cluster meets 5%?"});
  double sum_q = 0.0, sum_p = 0.0, sum_c = 0.0;
  double max_ga = 0.0;
  std::size_t n_cluster_ok = 0;

  for (const auto& dataset : paper_dataset_names()) {
    MinimizationFlow flow(figure_flow_config(dataset));
    flow.prepare();
    const auto& baseline = flow.baseline();

    const auto quant = flow.sweep_quantization(2, 7);
    const auto prune = flow.sweep_pruning({0.2, 0.3, 0.4, 0.5, 0.6});
    const auto cluster = flow.sweep_clustering({2, 3, 4, 6, 8});
    GaConfig ga;
    ga.population = 24;
    ga.generations = 12;
    auto proxy = flow.proxy_evaluator(/*finetune_epochs=*/2);
    ParallelEvaluator fitness(proxy);
    const auto outcome = flow.run_ga(fitness, ga);

    const double acc = baseline.accuracy;
    const double area = baseline.area_mm2;
    const auto gq = best_area_gain_at_loss(quant, acc, area, 0.05);
    const auto gp = best_area_gain_at_loss(prune, acc, area, 0.05);
    const auto gc = best_area_gain_at_loss(cluster, acc, area, 0.05);
    const auto gga = best_area_gain_at_loss(outcome.front, acc, area, 0.05);
    sum_q += gain_or_baseline(gq);
    sum_p += gain_or_baseline(gp);
    sum_c += gain_or_baseline(gc);
    max_ga = std::max(max_ga, gain_or_baseline(gga));
    // "Meets the 5% threshold" now requires an actual qualifying design,
    // not the old no-qualifier fallback that also reported 1.0x.
    const bool cluster_ok = gc.has_value() && *gc > 1.0;
    n_cluster_ok += cluster_ok ? 1 : 0;

    table.add_row({dataset, format_gain(gq), format_gain(gp), format_gain(gc),
                   format_gain(gga), cluster_ok ? "yes" : "no"});
    std::cerr << "[" << dataset << " done]\n";
  }
  table.add_separator();
  table.add_row({"average", format_factor(sum_q / 4.0), format_factor(sum_p / 4.0),
                 format_factor(sum_c / 4.0), std::string("max ") + format_factor(max_ga),
                 std::to_string(n_cluster_ok) + "/4"});
  std::cout << table.to_string() << '\n';

  std::cout << "paper reference:   quant avg 5.00x   prune avg 2.80x   cluster avg "
               "3.50x   combined up to 8.00x   cluster meets 5%: 2/4 (wines only)\n";
  return 0;
}
