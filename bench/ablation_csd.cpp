/// Ablation A1 (DESIGN.md): CSD vs plain binary recoding of the
/// hard-wired coefficients.  CSD minimizes the nonzero digits of each
/// constant multiplier, one of the two bespoke mechanisms the paper's
/// quantization savings compound on.  This bench quantifies the recoding
/// choice across the four classifiers and the paper's bit-width range.

#include "common.hpp"
#include "pnm/data/synth.hpp"
#include "pnm/hw/bespoke.hpp"

int main() {
  using namespace pnm;
  using namespace pnm::bench;

  std::cout << "==============================================================\n";
  std::cout << "Ablation A1: CSD vs binary coefficient recoding\n";
  std::cout << "==============================================================\n\n";

  TextTable table({"dataset", "bits", "area csd mm^2", "area binary mm^2", "saving"});
  for (const auto& dataset : paper_dataset_names()) {
    FlowConfig config = figure_flow_config(dataset);
    MinimizationFlow flow(config);
    flow.prepare();
    for (int bits : {4, 6, 8}) {
      Genome genome;
      const std::size_t n_layers = flow.float_model().layer_count();
      genome.weight_bits.assign(n_layers, bits);
      genome.sparsity_pct.assign(n_layers, 0);
      genome.clusters.assign(n_layers, 0);
      const QuantizedMlp qmodel = flow.realize_genome(genome, config.finetune_epochs);

      hw::BespokeOptions with_csd;
      hw::BespokeOptions without_csd;
      without_csd.use_csd = false;
      const double area_csd =
          hw::BespokeCircuit(qmodel, with_csd).area_mm2(flow.tech());
      const double area_bin =
          hw::BespokeCircuit(qmodel, without_csd).area_mm2(flow.tech());
      table.add_row({dataset, std::to_string(bits), format_fixed(area_csd, 1),
                     format_fixed(area_bin, 1),
                     format_fixed(100.0 * (1.0 - area_csd / area_bin), 1) + "%"});
    }
  }
  std::cout << table.to_string() << '\n';
  std::cout << "expected shape: savings grow with weight bit-width (more runs of "
               "ones to recode).  The per-coefficient hybrid never picks a worse "
               "recoding; tiny negative entries (<1%) can appear because gate-level "
               "CSE across *different* multipliers of the same input is invisible "
               "to the per-coefficient cost model.\n";
  return 0;
}
