/// \file scenario_bench.cpp
/// \brief Scenario-matrix benchmark and triple gate: runs a small but
///        real grid (UCI analog + synthetic sweep point, default + wide
///        topology, with drift perturbations) and records the verified
///        measurements in BENCH_scenario.json.
///
/// Three invariants are measured, not assumed; exit status is nonzero —
/// CI red — when any fails, so the committed record is always verified:
///
///   1. proxy fidelity — on every *gated* (small-topology) cell, the
///      worst relative proxy-vs-netlist area delta across the final front
///      stays within ScenarioSpec::fidelity_tolerance.  The wide-topology
///      cells are recorded ungated: their deltas land in the JSON as a
///      tracked baseline, not a gate.
///   2. drift determinism — the grid is run again against the warm store
///      and the drift-robustness report (plus the whole grid JSON) must
///      be byte-identical to the cold run's.
///   3. duplicate-free sharding — two real worker processes drain the
///      same grid into a fresh shared store; the collected grid must be
///      byte-identical to the serial run's, the store must hold zero
///      duplicate evaluation records, and the workers' total fresh
///      evaluations must equal the serial run's.

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "pnm/core/eval_store.hpp"
#include "pnm/core/scenario.hpp"
#include "pnm/util/fileio.hpp"

namespace {

pnm::ScenarioSpec bench_spec(const std::string& store_dir) {
  pnm::ScenarioSpec spec;
  // One paper analog plus one synthetic-sweep point of similar size; the
  // default printed-scale topology (gated) and a wider/deeper one (24-16,
  // above the 16-wide gate threshold -> recorded ungated).
  spec.datasets = {"seeds", "synth:f8:c3:n600:sep2:ord0:k1:ln0.05"};
  spec.topologies = {{}, {24, 16}};
  spec.base.train.epochs = 20;
  spec.base.finetune_epochs = 5;
  spec.ga.population = 10;
  spec.ga.generations = 4;
  spec.drifts = {
      {"noise", /*feature_noise=*/0.05, /*class_prior_shift=*/0.0, /*seed=*/11},
      {"shift", /*feature_noise=*/0.0, /*class_prior_shift=*/0.3, /*seed=*/12},
  };
  spec.store_dir = store_dir;
  return spec;
}

/// Total duplicate records across every eval store under the scenario's
/// store directory.
std::size_t store_duplicates(const std::string& store_dir) {
  std::size_t duplicates = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(store_dir, ec);
  if (ec) return duplicates;
  for (const std::filesystem::directory_entry& entry : it) {
    if (!entry.is_directory(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 10 || name.substr(name.size() - 10) != ".evalstore") continue;
    duplicates += pnm::EvalStore::count_duplicate_records(entry.path().string());
  }
  return duplicates;
}

/// Worst ungated fidelity delta — the tracked-not-gated baseline number.
double max_ungated_rel_delta(const pnm::ScenarioResult& result) {
  double max_delta = 0.0;
  for (const pnm::ScenarioCellResult& c : result.cells) {
    if (!c.fidelity_gated && c.fidelity_max_rel_delta > max_delta) {
      max_delta = c.fidelity_max_rel_delta;
    }
  }
  return max_delta;
}

}  // namespace

int main() {
  using namespace pnm;

  const std::string serial_store = "scenario_bench_store_serial";
  const std::string shard_store = "scenario_bench_store_2worker";
  std::error_code ec;
  std::filesystem::remove_all(serial_store, ec);
  std::filesystem::remove_all(shard_store, ec);

  // Cold serial reference: every cell in this process.
  std::string serial_grid;
  std::string serial_drift;
  std::size_t serial_misses = 0;
  std::size_t gated_cells = 0;
  std::size_t total_cells = 0;
  double gated_delta = 0.0;
  double ungated_delta = 0.0;
  std::size_t violations = 0;
  double tolerance = 0.0;
  double serial_seconds = 0.0;
  {
    const auto start = std::chrono::steady_clock::now();
    ScenarioRunner runner(bench_spec(serial_store));
    const ScenarioResult serial = runner.run();
    serial_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    serial_grid = serial.grid_json();
    serial_drift = serial.drift_report();
    serial_misses = serial.total_cache_misses();
    total_cells = serial.cells.size();
    for (const ScenarioCellResult& c : serial.cells) gated_cells += c.fidelity_gated;
    gated_delta = serial.max_gated_rel_delta();
    ungated_delta = max_ungated_rel_delta(serial);
    tolerance = runner.spec().fidelity_tolerance;
    violations = serial.fidelity_violations(tolerance);
  }
  std::cout << "-- serial cold: " << serial_seconds << " s, " << serial_misses
            << " fresh evaluations, " << gated_cells << "/" << total_cells
            << " gated cells, max gated fidelity delta " << gated_delta
            << " (tolerance " << tolerance << "), max ungated " << ungated_delta
            << " --\n";

  // Warm rerun against the same store: the drift pass (and the whole
  // grid) must reproduce byte-identically, with zero fresh evaluations.
  std::string warm_grid;
  std::string warm_drift;
  std::size_t warm_misses = 0;
  double warm_seconds = 0.0;
  {
    const auto start = std::chrono::steady_clock::now();
    const ScenarioResult warm = ScenarioRunner(bench_spec(serial_store)).run();
    warm_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    warm_grid = warm.grid_json();
    warm_drift = warm.drift_report();
    warm_misses = warm.total_cache_misses();
  }
  const bool drift_deterministic = (warm_drift == serial_drift);
  const bool grid_deterministic = (warm_grid == serial_grid);
  std::cout << "-- warm rerun: " << warm_seconds << " s, " << warm_misses
            << " fresh evaluations, drift report byte-identical: "
            << (drift_deterministic ? "yes" : "NO (BUG)") << " --\n";

  // Two worker processes drain the same grid into one fresh shared store.
  // Forked before any runner exists in this process, so no thread pool
  // crosses the fork; dynamic claiming (no static shard) exercises the
  // work-queue path.
  std::fflush(nullptr);
  const auto shard_start = std::chrono::steady_clock::now();
  pid_t children[2] = {0, 0};
  for (std::size_t j = 0; j < 2; ++j) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      ScenarioSpec spec = bench_spec(shard_store);
      spec.writer_id = j;  // preferred store segment (probing makes any id safe)
      int status = 0;
      try {
        ScenarioRunner worker(std::move(spec));
        worker.run_worker();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "worker %zu: %s\n", j, e.what());
        status = 1;
      }
      std::fflush(nullptr);
      _exit(status);
    }
    children[j] = pid;
  }
  bool worker_failed = false;
  for (pid_t pid : children) {
    int status = 0;
    if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      worker_failed = true;
    }
  }
  const std::optional<ScenarioResult> sharded =
      worker_failed ? std::nullopt : collect_scenario(bench_spec(shard_store));
  const double shard_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - shard_start)
          .count();
  if (worker_failed || !sharded) {
    std::cerr << "FAIL: " << (worker_failed ? "a worker process exited abnormally"
                                            : "collect found missing/stale cells")
              << "\n";
    return 1;
  }

  const std::string shard_grid = sharded->grid_json();
  const std::size_t shard_misses = sharded->total_cache_misses();
  const std::size_t duplicates = store_duplicates(shard_store);
  const bool shard_identical = (shard_grid == serial_grid);
  const bool no_duplicate_evals = (shard_misses == serial_misses);
  const unsigned cores = std::thread::hardware_concurrency();

  std::cout << "-- 2-worker: " << shard_seconds << " s, " << shard_misses
            << " fresh evaluations across both workers --\n"
            << "  grid byte-identical to serial: "
            << (shard_identical ? "yes" : "NO (BUG)") << '\n'
            << "  duplicate records in shared store: " << duplicates << '\n';

  std::ofstream json("BENCH_scenario.json");
  if (!json) {
    std::cerr << "error: cannot write BENCH_scenario.json\n";
    return 1;
  }
  json << "[\n  {\"bench\": \"scenario_matrix_2x2\""
       << ", \"cells\": " << total_cells
       << ", \"gated_cells\": " << gated_cells
       << ", \"drifts\": 2"
       << ", \"machine_cores\": " << cores
       << ", \"serial_seconds\": " << format_double_roundtrip(serial_seconds)
       << ", \"warm_seconds\": " << format_double_roundtrip(warm_seconds)
       << ", \"two_worker_seconds\": " << format_double_roundtrip(shard_seconds)
       << ", \"serial_misses\": " << serial_misses
       << ", \"warm_misses\": " << warm_misses
       << ", \"two_worker_misses\": " << shard_misses
       << ", \"duplicate_store_records\": " << duplicates
       << ", \"fidelity_tolerance\": " << format_double_roundtrip(tolerance)
       << ", \"max_gated_rel_delta\": " << format_double_roundtrip(gated_delta)
       << ", \"max_ungated_rel_delta\": " << format_double_roundtrip(ungated_delta)
       << ", \"fidelity_violations\": " << violations
       << ", \"drift_report_deterministic\": "
       << (drift_deterministic ? "true" : "false")
       << ", \"grid_deterministic\": " << (grid_deterministic ? "true" : "false")
       << ", \"shard_grid_identical\": " << (shard_identical ? "true" : "false")
       << "}\n]\n";
  std::cout << "(wrote BENCH_scenario.json)\n";

  if (violations != 0) {
    std::cerr << "FAIL: " << violations << " gated cell(s) exceed the proxy-"
              << "fidelity tolerance " << tolerance << " (max gated delta "
              << gated_delta << ")\n";
    return 1;
  }
  if (!drift_deterministic || !grid_deterministic) {
    std::cerr << "FAIL: warm rerun produced a different "
              << (drift_deterministic ? "grid JSON" : "drift report") << '\n';
    return 1;
  }
  if (warm_misses != 0) {
    std::cerr << "FAIL: warm rerun evaluated " << warm_misses
              << " genome(s) fresh — the store resume guarantee broke\n";
    return 1;
  }
  if (!shard_identical) {
    std::cerr << "FAIL: 2-worker collected grid differs from the serial run\n";
    return 1;
  }
  if (duplicates != 0) {
    std::cerr << "FAIL: " << duplicates
              << " duplicate evaluation record(s) in the shared store\n";
    return 1;
  }
  if (!no_duplicate_evals) {
    std::cerr << "FAIL: workers evaluated " << shard_misses
              << " genomes fresh, serial evaluated " << serial_misses
              << " — a cell ran twice or a claim leaked\n";
    return 1;
  }
  return 0;
}
