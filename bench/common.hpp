#ifndef PNM_BENCH_COMMON_HPP
#define PNM_BENCH_COMMON_HPP

/// \file common.hpp
/// \brief Shared helpers for the figure-reproduction harness.
///
/// Every bench binary prints (a) the raw design-point series it measured,
/// normalized exactly like the paper's axes (area / baseline-area,
/// absolute accuracy plus delta to the baseline), and (b) the summary
/// statistic the paper quotes for that figure.  Absolute areas are also
/// printed so the printed-technology scale (cm^2!) is visible.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "pnm/core/flow.hpp"
#include "pnm/core/infer_simd.hpp"
#include "pnm/core/pareto.hpp"
#include "pnm/util/table.hpp"
#include "pnm/util/thread_pool.hpp"

namespace pnm::bench {

/// Core count stamped into BENCH_*.json records so perf numbers carry
/// their machine context (the CI runner and a laptop are not comparable).
inline std::size_t machine_cores() { return ThreadPool::default_thread_count(); }

/// Runtime-detected instruction set the inference engine dispatched to
/// ("avx2", "neon", or "scalar" — the latter also when PNM_FORCE_SCALAR
/// is set).  Stamped next to machine_cores so perf rows say which kernel
/// produced them.
inline const char* machine_isa() { return simd::isa_name(simd::active_isa()); }

/// The flow configuration used by all figure benches (full-size runs; the
/// unit tests use reduced budgets instead).
inline FlowConfig figure_flow_config(const std::string& dataset) {
  FlowConfig config;
  config.dataset_name = dataset;
  config.seed = 42;
  config.train.epochs = 60;
  config.finetune_epochs = 8;
  return config;
}

/// Prints one technique's sweep, normalized to the baseline.
inline void print_series(const std::string& title, const std::vector<DesignPoint>& points,
                         const DesignPoint& baseline) {
  std::cout << "-- " << title << " --\n";
  TextTable table({"config", "norm area", "area gain", "accuracy", "acc delta",
                   "area mm^2", "power mW", "delay ms"});
  for (const auto& p : points) {
    // Degenerate designs can fold to constant classifiers with zero area
    // (e.g. 2-bit QAT collapsing a layer); report the gain as "-".
    const std::string gain =
        p.area_mm2 > 0.0 ? format_factor(baseline.area_mm2 / p.area_mm2) : "-";
    table.add_row({p.config, format_fixed(p.area_mm2 / baseline.area_mm2, 3), gain,
                   format_fixed(p.accuracy, 3),
                   format_fixed(p.accuracy - baseline.accuracy, 3),
                   format_fixed(p.area_mm2, 1), format_fixed(p.power_uw / 1000.0, 2),
                   format_fixed(p.delay_ms, 1)});
  }
  std::cout << table.to_string() << '\n';
}

/// Prints the Pareto front of a sweep (what the paper's figures plot).
inline void print_front(const std::string& title, std::vector<DesignPoint> points,
                        const DesignPoint& baseline) {
  const auto front = pareto_front(std::move(points));
  std::cout << "-- " << title << " (pareto front) --\n";
  TextTable table({"config", "norm area", "accuracy"});
  for (const auto& p : front) {
    table.add_row({p.config, format_fixed(p.area_mm2 / baseline.area_mm2, 3),
                   format_fixed(p.accuracy, 3)});
  }
  std::cout << table.to_string() << '\n';
}

/// Table cell for an optional gain: "5.02x", or "n/a" when no design met
/// the loss budget (best_area_gain_at_loss's no-qualifier case).
inline std::string format_gain(const std::optional<double>& gain) {
  return gain ? format_factor(*gain) : "n/a";
}

/// Numeric value of an optional gain for averaging/comparing series.
/// The baseline itself always meets any loss budget, so every series can
/// realize at least 1.0x: a sweep with no qualifying design contributes
/// exactly that, and a qualifying design *larger* than the baseline
/// (sub-unity factor) is clamped up to it as well — otherwise "nothing
/// qualified" (1.0) would rank above "something qualified at 0.9x".
inline double gain_or_baseline(const std::optional<double>& gain) {
  return std::max(1.0, gain.value_or(1.0));
}

/// "Up to X area gain for <= loss accuracy loss" summary line.
inline std::optional<double> report_gain(const std::string& technique,
                                         const std::vector<DesignPoint>& points,
                                         const DesignPoint& baseline, double loss = 0.05) {
  const auto gain =
      best_area_gain_at_loss(points, baseline.accuracy, baseline.area_mm2, loss);
  std::cout << technique << ": max area gain at <=" << format_fixed(loss * 100, 0)
            << "% accuracy loss = " << format_gain(gain)
            << (gain ? "" : " (no design within the loss budget)") << '\n';
  return gain;
}

/// Machine-readable dump of one series for external plotting: writes
/// technique, config, accuracy, normalized area, and the absolute
/// physical numbers to `path` (one row per design point, baseline first).
inline void write_points_csv(const std::string& path,
                             const std::vector<DesignPoint>& points,
                             const DesignPoint& baseline) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << '\n';
    return;
  }
  out << "technique,config,accuracy,norm_area,area_mm2,power_uw,delay_ms\n";
  auto row = [&out, &baseline](const DesignPoint& p) {
    out << p.technique << ',' << p.config << ',' << format_fixed(p.accuracy, 4) << ','
        << format_fixed(baseline.area_mm2 > 0 ? p.area_mm2 / baseline.area_mm2 : 0.0, 4)
        << ',' << format_fixed(p.area_mm2, 2) << ',' << format_fixed(p.power_uw, 1)
        << ',' << format_fixed(p.delay_ms, 1) << '\n';
  };
  row(baseline);
  for (const auto& p : points) row(p);
  std::cout << "(wrote " << path << ")\n";
}

inline void print_baseline(const MinimizationFlow& flow) {
  const auto& b = flow.baseline();
  std::cout << "baseline (unminimized bespoke, " << b.config
            << " weights): accuracy " << format_fixed(b.accuracy, 3) << ", area "
            << format_fixed(b.area_mm2, 1) << " mm^2 ("
            << format_fixed(b.area_mm2 / 100.0, 2) << " cm^2), power "
            << format_fixed(b.power_uw / 1000.0, 2) << " mW, delay "
            << format_fixed(b.delay_ms, 1) << " ms\n"
            << "float model test accuracy: " << format_fixed(flow.float_test_accuracy(), 3)
            << "\n\n";
}

}  // namespace pnm::bench

#endif  // PNM_BENCH_COMMON_HPP
