#!/usr/bin/env bash
# Run the repo's clang-tidy gate (the same invocation CI hard-gates on):
# every TU under src/ is checked against .clang-tidy with warnings as
# errors.  Requires clang-tidy >= 15 and a compile_commands.json.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true
[ "${1:-}" = "--" ] && shift

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "error: $tidy not found (set CLANG_TIDY=... or install clang-tidy)" >&2
  exit 2
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "configuring ${build_dir} with compile commands export..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
echo "clang-tidy gate: ${#sources[@]} TUs under src/ (config: .clang-tidy)" >&2

# run-clang-tidy parallelizes when available; fall back to a plain loop.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$tidy" -p "$build_dir" -quiet \
    "$@" "${sources[@]}"
else
  for f in "${sources[@]}"; do
    "$tidy" -p "$build_dir" --quiet "$@" "$f"
  done
fi
echo "clang-tidy gate: clean" >&2
