/// Fuzz target: serve::FrameReader::feed + the payload decoders.
///
/// Structure-aware split: the first input byte seeds a deterministic
/// chunker, so one corpus entry exercises many fragmentation patterns of
/// the same byte stream across mutations (reassembly joins are where
/// incremental parsers break).  Every completed frame is pushed through
/// the real payload decoders, and two invariants are enforced with
/// abort(): a poisoned reader must stay poisoned, and a dispatched
/// payload must never exceed the frame cap.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "pnm/serve/protocol.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t chunk_seed = data[0];
  ++data;
  --size;

  constexpr std::size_t kCap = 1 << 16;
  pnm::serve::FrameReader reader(kCap);

  std::uint32_t id = 0;
  std::vector<double> features;
  pnm::serve::PredictResponse resp;
  bool ok_flag = false;
  std::string message;

  const auto handler = [&](pnm::serve::FrameType type,
                           std::span<const std::uint8_t> payload) {
    if (payload.size() >= kCap) abort();  // cap must bound every dispatch
    switch (type) {
      case pnm::serve::FrameType::kPredict:
        (void)pnm::serve::decode_predict(payload, id, features);
        break;
      case pnm::serve::FrameType::kPredictResp:
        (void)pnm::serve::decode_predict_resp(payload, resp);
        break;
      case pnm::serve::FrameType::kSwapResp:
        (void)pnm::serve::decode_swap_resp(payload, ok_flag, message);
        break;
      default:
        break;  // kStats/kSwap/kError payloads are free-form bytes
    }
  };

  std::uint64_t rng = (static_cast<std::uint64_t>(chunk_seed) << 1) | 1;
  std::size_t pos = 0;
  bool alive = true;
  while (pos < size && alive) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t chunk = std::min<std::size_t>(1 + (rng >> 33) % 37, size - pos);
    alive = reader.feed(data + pos, chunk, handler);
    pos += chunk;
  }
  (void)reader.mid_frame();
  if (!alive && reader.feed(data, size, handler)) abort();  // poison is sticky
  return 0;
}
