/// Replay driver for toolchains without libFuzzer (GCC).
///
/// Links against the same `LLVMFuzzerTestOneInput` entry point a real
/// libFuzzer build uses, and accepts the same positional arguments:
/// every file (or every file inside a directory) given on the command
/// line is executed once, then each seed is re-executed under a burst of
/// deterministic xorshift mutations — byte flips, truncations, and
/// splices — so even the fallback engine probes the neighborhood of
/// every checked-in input instead of just replaying it.  Dashed
/// libFuzzer flags (-runs=, -max_total_time=, ...) are ignored so the
/// same ctest command line drives both engines.
///
/// Failures are crashes: the target (or its sanitizer runtime) aborts,
/// ctest reports the nonzero exit, and the failing input is the one
/// named in the last "replay:" / "mutate:" line printed.
///
/// PNM_FUZZ_MUTATIONS overrides the per-seed mutation count (default
/// 512; 0 disables mutation and replays only).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

std::uint64_t xorshift(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint8_t b : bytes) h = (h ^ b) * 1099511628211ull;
  return h == 0 ? 1 : h;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

void run_one(const std::vector<std::uint8_t>& bytes) {
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

/// One deterministic mutation of `seed` (never mutates in place).
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& seed,
                                 std::uint64_t& rng) {
  std::vector<std::uint8_t> m = seed;
  const std::uint64_t op = xorshift(rng) % 4;
  if (m.empty() || op == 0) {
    // Insert a random byte (also the only op for empty seeds).
    const std::size_t at = m.empty() ? 0 : xorshift(rng) % (m.size() + 1);
    m.insert(m.begin() + static_cast<std::ptrdiff_t>(at),
             static_cast<std::uint8_t>(xorshift(rng)));
  } else if (op == 1) {
    m[xorshift(rng) % m.size()] = static_cast<std::uint8_t>(xorshift(rng));
  } else if (op == 2) {
    m.resize(xorshift(rng) % m.size());  // truncate
  } else {
    // Splice: overwrite a short window with bytes from elsewhere in the
    // seed (exercises duplicated/reordered structure).
    const std::size_t from = xorshift(rng) % m.size();
    const std::size_t to = xorshift(rng) % m.size();
    const std::size_t len = std::min<std::size_t>(
        1 + xorshift(rng) % 8, m.size() - std::max(from, to));
    std::memmove(m.data() + to, m.data() + from, len);
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t mutations = 512;
  if (const char* env = std::getenv("PNM_FUZZ_MUTATIONS")) {
    mutations = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }

  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // libFuzzer flags: ignored here
    std::error_code ec;
    if (std::filesystem::is_directory(argv[i], ec)) {
      std::vector<std::string> in_dir;
      for (const auto& entry : std::filesystem::directory_iterator(argv[i], ec)) {
        if (entry.is_regular_file()) in_dir.push_back(entry.path().string());
      }
      std::sort(in_dir.begin(), in_dir.end());  // deterministic replay order
      files.insert(files.end(), in_dir.begin(), in_dir.end());
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s [-libfuzzer-flags...] corpus-dir|file...\n", argv[0]);
    return 2;
  }

  std::size_t executed = 0;
  for (const std::string& path : files) {
    std::vector<std::uint8_t> bytes;
    if (!read_file(path, bytes)) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 2;
    }
    std::printf("replay: %s (%zu bytes)\n", path.c_str(), bytes.size());
    std::fflush(stdout);
    run_one(bytes);
    ++executed;

    if (mutations > 0) {
      std::printf("mutate: %s x%zu\n", path.c_str(), mutations);
      std::fflush(stdout);
      std::uint64_t rng = fnv1a(bytes);
      for (std::size_t k = 0; k < mutations; ++k) {
        run_one(mutate(bytes, rng));
        ++executed;
      }
    }
  }
  std::printf("done: %zu executions over %zu seeds\n", executed, files.size());
  return 0;
}
