/// Fuzz target: the CSV dataset reader.
///
/// Any byte stream must either load to a Dataset that passes its own
/// validate() (load_csv calls it before returning) or throw a typed
/// std::runtime_error with a line-numbered message.  Crashes and UB are
/// findings — this target is what forced the label-range check in
/// load_csv (a label of "1e300" used to be an undefined float→int
/// cast).  Both supported delimiters are exercised.

#include <cstdint>
#include <exception>
#include <sstream>
#include <string>

#include "pnm/data/csv.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  for (const char delimiter : {',', ';'}) {
    std::istringstream in(text);
    try {
      const pnm::CsvLoadResult result = pnm::load_csv(in, delimiter, "fuzz");
      (void)result;
    } catch (const std::exception&) {
      // Typed rejection is the expected outcome for malformed input.
    }
  }
  return 0;
}
