/// Fuzz target: the pnm-model v1 text parser.
///
/// Any input either parses to a structurally valid QuantizedMlp or
/// throws a typed std::exception — crashes, hangs, and unbounded
/// allocation are findings (the parser carries a total weight budget
/// precisely because this target demonstrated a 4 TiB allocation from a
/// 60-byte header).  Accepted inputs must additionally satisfy save/
/// parse closure: re-serializing the parsed model must produce a text
/// the parser accepts again with identical structure.

#include <cstdint>
#include <cstdlib>
#include <exception>
#include <string>

#include "pnm/core/model_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const pnm::QuantizedMlp model = pnm::parse_quantized_mlp_text(text);
    const std::string saved = pnm::save_quantized_mlp_text(model, "fuzz");
    try {
      const pnm::QuantizedMlp again = pnm::parse_quantized_mlp_text(saved);
      if (again.layer_count() != model.layer_count() ||
          again.input_size() != model.input_size() ||
          again.input_bits() != model.input_bits()) {
        abort();  // round-trip changed the model's shape
      }
    } catch (const std::exception&) {
      abort();  // parser rejected its own serializer's output
    }
  } catch (const std::exception&) {
    // Typed rejection is the expected outcome for malformed input.
  }
  return 0;
}
