/// Fuzz target: the eval-store record parser (the same code path a
/// segment preload walks line by line).
///
/// The input is treated exactly like a segment body: split on '\n',
/// each line offered to parse_eval_record.  Accepted records must
/// satisfy format/parse closure — re-serializing must reproduce the
/// byte-identical line (this is the property the store's byte-for-byte
/// warm-rerun guarantee rests on), enforced with abort().  Comparing
/// the formatted text (not the parsed doubles) keeps NaN-carrying
/// records honest.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "pnm/core/eval_store.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::string_view body(reinterpret_cast<const char*>(data), size);
  while (!body.empty()) {
    const std::size_t eol = body.find('\n');
    const std::string_view line =
        body.substr(0, eol == std::string_view::npos ? body.size() : eol);
    body.remove_prefix(eol == std::string_view::npos ? body.size() : eol + 1);
    if (line.empty()) continue;

    std::string key;
    pnm::DesignPoint point;
    if (!pnm::parse_eval_record(line, key, point)) continue;

    const std::string formatted = pnm::format_eval_record(key, point);
    std::string key2;
    pnm::DesignPoint point2;
    const std::string_view reline =
        std::string_view(formatted).substr(0, formatted.size() - 1);  // strip '\n'
    if (!pnm::parse_eval_record(reline, key2, point2)) abort();
    if (pnm::format_eval_record(key2, point2) != formatted) abort();
  }
  return 0;
}
